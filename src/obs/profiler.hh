/**
 * @file
 * Profiler: bounded recorder of the *dynamic* CDFG.
 *
 * The runtime engine (and, through packet annotations, the memory
 * system) emits one ProfNode per committed dynamic instruction
 * instance: its ready/issue/commit cycles, the critical predecessor
 * that released it (data producer or importing terminator), and a
 * cause for each segment of its lifetime — why it waited to become
 * ready, why it waited to issue once ready, and what its execution
 * latency was spent on (FU latency, memory round trip, cache miss,
 * SPM bank conflict, downstream queueing).
 *
 * This is the raw material the paper's analysis story needs: the
 * recorded graph is the dynamic CDFG the trace-based tools cannot
 * see, and critical_path.hh turns it into a ranked, cause-attributed
 * hotspot report. Recording is bounded (drops past a cap, counting
 * the drops) so profiling long runs cannot exhaust memory, and it
 * only happens while a profiler is attached — the engine's fast path
 * pays one pointer test when profiling is off.
 */

#ifndef SALAM_OBS_PROFILER_HH
#define SALAM_OBS_PROFILER_HH

#include <cstdint>
#include <map>
#include <string>
#include <unordered_map>
#include <vector>

namespace salam::obs
{

/** Sequence number meaning "no predecessor". */
constexpr std::uint64_t noProfSeq = ~std::uint64_t(0);

/**
 * Why a dynamic instruction instance (or one segment of its
 * lifetime) spent cycles. The first three are link causes (what
 * released the instance), the next three are issue-wait causes
 * (what blocked a ready instance), and the rest are execution
 * causes (what the issue-to-commit latency was spent on).
 */
enum class ProfCause : unsigned char
{
    Start = 0,    ///< beginning of execution (entry block)
    Control,      ///< block-import fence behind a terminator
    DataDep,      ///< waiting on an operand producer
    FuContention, ///< operands ready, no functional unit free
    MemOrdering,  ///< ready memory op blocked by disambiguation
    MemPort,      ///< ready memory op blocked by port/queue limits
    Compute,      ///< occupying a functional unit (latency)
    MemResponse,  ///< plain memory round trip
    CacheMiss,    ///< memory round trip that missed in a cache
    BankConflict, ///< round trip deferred by an SPM bank conflict
    MemQueue,     ///< round trip queued behind other requests
    DmaWait,      ///< round trip serialized behind external/DMA traffic
    BusArbitration, ///< round trip held by bus data-channel arbitration
    CreditStall,  ///< request refused for exhausted interconnect credits
};

constexpr unsigned numProfCauses = 14;

/** Stable lower-case identifier, e.g. "fu_contention". */
const char *profCauseName(ProfCause cause);

/** One recorded dynamic instruction instance. */
struct ProfNode
{
    /** Dynamic sequence number (unique per engine run). */
    std::uint64_t seq = 0;

    /** Static instruction id (index into the static table). */
    unsigned staticId = 0;

    /** Cycle every issue constraint was satisfied. */
    std::uint64_t readyCycle = 0;

    std::uint64_t issueCycle = 0;
    std::uint64_t commitCycle = 0;

    /** Critical predecessor (released this instance); noProfSeq. */
    std::uint64_t parentSeq = noProfSeq;

    /** Why readyCycle is what it is (Start/Control/DataDep). */
    ProfCause linkCause = ProfCause::Start;

    /** What the ready-to-issue gap was spent waiting on. */
    ProfCause waitCause = ProfCause::DataDep;

    /** What the issue-to-commit latency was spent on. */
    ProfCause execCause = ProfCause::Compute;
};

/** Static-instruction metadata used to label hotspots. */
struct ProfStaticInfo
{
    std::string inst;   ///< SSA name, e.g. "%mul4"
    std::string block;  ///< owning basic block label
    std::string func;   ///< kernel function name
    std::string opcode; ///< e.g. "fmul"
};

/** Bounded recorder of dynamic-CDFG nodes for one engine. */
class Profiler
{
  public:
    /** Default node cap: ~1M instances (tens of MB at most). */
    static constexpr std::size_t defaultMaxNodes = 1u << 20;

    explicit Profiler(std::size_t max_nodes = defaultMaxNodes)
        : maxNodes(max_nodes)
    {}

    /** Attach the static-id → metadata table (index = staticId). */
    void setStaticTable(std::vector<ProfStaticInfo> table)
    { statics = std::move(table); }

    const std::vector<ProfStaticInfo> &staticTable() const
    { return statics; }

    /** Metadata for @p static_id; nullptr when out of range. */
    const ProfStaticInfo *
    staticInfo(unsigned static_id) const
    {
        return static_id < statics.size() ? &statics[static_id]
                                          : nullptr;
    }

    /** Record one committed instance; drops past the cap. */
    void
    record(const ProfNode &node)
    {
        if (recorded.size() >= maxNodes) {
            ++droppedNodes;
            return;
        }
        seqIndex.emplace(node.seq, recorded.size());
        recorded.push_back(node);
    }

    /** Nodes in commit order (memory ops commit out of order). */
    const std::vector<ProfNode> &nodes() const { return recorded; }

    /** Node by dynamic sequence number; nullptr when absent. */
    const ProfNode *
    findBySeq(std::uint64_t seq) const
    {
        auto it = seqIndex.find(seq);
        return it == seqIndex.end() ? nullptr
                                    : &recorded[it->second];
    }

    std::size_t size() const { return recorded.size(); }

    bool empty() const { return recorded.empty(); }

    /** Instances discarded after the cap was hit. */
    std::uint64_t dropped() const { return droppedNodes; }

    /**
     * Note ticks an external agent (e.g. a DMA transfer) kept the
     * system busy. Not part of the instruction graph — surfaced as
     * context in the hotspot report.
     */
    void noteExternalWait(const std::string &what,
                          std::uint64_t ticks)
    { externals[what] += ticks; }

    const std::map<std::string, std::uint64_t> &
    externalWaits() const
    { return externals; }

    void
    clear()
    {
        recorded.clear();
        seqIndex.clear();
        externals.clear();
        droppedNodes = 0;
    }

  private:
    std::size_t maxNodes;
    std::vector<ProfStaticInfo> statics;
    std::vector<ProfNode> recorded;
    std::unordered_map<std::uint64_t, std::size_t> seqIndex;
    std::map<std::string, std::uint64_t> externals;
    std::uint64_t droppedNodes = 0;
};

} // namespace salam::obs

#endif // SALAM_OBS_PROFILER_HH

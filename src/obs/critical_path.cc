#include "obs/critical_path.hh"

#include <algorithm>
#include <fstream>
#include <ostream>
#include <unordered_map>

#include "obs/json.hh"

namespace salam::obs
{

namespace
{

/** Fallback labels when a node's staticId is not in the table. */
ProfStaticInfo
labelsFor(const Profiler &prof, unsigned static_id)
{
    if (const ProfStaticInfo *info = prof.staticInfo(static_id))
        return *info;
    ProfStaticInfo anon;
    anon.inst = "inst#" + std::to_string(static_id);
    anon.block = "?";
    anon.func = "?";
    anon.opcode = "?";
    return anon;
}

void
rankHotspots(std::vector<Hotspot> &spots)
{
    std::sort(spots.begin(), spots.end(),
              [](const Hotspot &a, const Hotspot &b) {
                  auto ac = a.cycles(), bc = b.cycles();
                  if (ac != bc)
                      return ac > bc;
                  return a.label < b.label;
              });
}

void
writeCauses(std::ostream &os,
            const std::array<std::uint64_t, numProfCauses> &causes)
{
    os << "{";
    bool first = true;
    for (unsigned c = 0; c < numProfCauses; ++c) {
        if (!causes[c])
            continue;
        if (!first)
            os << ",";
        first = false;
        os << "\"" << profCauseName(ProfCause(c))
           << "\":" << causes[c];
    }
    os << "}";
}

void
writeHotspots(std::ostream &os, const std::vector<Hotspot> &spots,
              bool instruction_level)
{
    os << "[";
    for (std::size_t i = 0; i < spots.size(); ++i) {
        const Hotspot &h = spots[i];
        if (i)
            os << ",";
        os << "{\"label\":\"" << jsonEscape(h.label) << "\""
           << ",\"func\":\"" << jsonEscape(h.func) << "\""
           << ",\"block\":\"" << jsonEscape(h.block) << "\"";
        if (instruction_level) {
            os << ",\"inst\":\"" << jsonEscape(h.inst) << "\""
               << ",\"opcode\":\"" << jsonEscape(h.opcode) << "\"";
        }
        os << ",\"cycles\":" << h.cycles()
           << ",\"instances\":" << h.instances << ",\"causes\":";
        writeCauses(os, h.causeCycles);
        os << "}";
    }
    os << "]";
}

} // namespace

CriticalPathReport
analyzeCriticalPath(const Profiler &prof)
{
    CriticalPathReport report;
    report.recordedNodes = prof.size();
    report.droppedNodes = prof.dropped();
    report.externalWaits = prof.externalWaits();
    if (prof.empty())
        return report;

    // The sink is the last commit; prefer the younger instance on a
    // tie so the walk sees the longest dependence chain.
    const ProfNode *sink = &prof.nodes().front();
    for (const ProfNode &n : prof.nodes()) {
        if (n.commitCycle > sink->commitCycle ||
            (n.commitCycle == sink->commitCycle &&
             n.seq > sink->seq)) {
            sink = &n;
        }
    }
    report.sinkCommitCycle = sink->commitCycle;

    // Aggregation keyed by static id (instructions) and by
    // "func:block" (blocks).
    std::unordered_map<unsigned, Hotspot> by_inst;
    std::unordered_map<std::string, Hotspot> by_block;

    auto instHotspot = [&](const ProfNode &n) -> Hotspot & {
        Hotspot &hi = by_inst[n.staticId];
        if (hi.label.empty()) {
            ProfStaticInfo info = labelsFor(prof, n.staticId);
            hi.func = info.func;
            hi.block = info.block;
            hi.inst = info.inst;
            hi.opcode = info.opcode;
            hi.label = info.func + ":" + info.block + ":" +
                info.inst + " (" + info.opcode + ")";
        }
        return hi;
    };
    auto blockHotspot = [&](const Hotspot &hi) -> Hotspot & {
        Hotspot &hb = by_block[hi.func + ":" + hi.block];
        if (hb.label.empty()) {
            hb.func = hi.func;
            hb.block = hi.block;
            hb.label = hi.func + ":" + hi.block;
        }
        return hb;
    };
    auto attribute = [&](const ProfNode &n, ProfCause cause,
                         std::uint64_t cycles) {
        if (!cycles)
            return;
        report.causeCycles[unsigned(cause)] += cycles;
        report.pathCycles += cycles;
        Hotspot &hi = instHotspot(n);
        hi.causeCycles[unsigned(cause)] += cycles;
        blockHotspot(hi).causeCycles[unsigned(cause)] += cycles;
    };

    // Backward walk. Parent seqs are strictly smaller than their
    // consumer's seq, so the walk terminates.
    const ProfNode *node = sink;
    while (node) {
        ++report.pathNodes;
        Hotspot &hi = instHotspot(*node);
        hi.instances++;
        blockHotspot(hi).instances++;

        // Execution span: issue -> commit.
        if (node->commitCycle > node->issueCycle) {
            attribute(*node, node->execCause,
                      node->commitCycle - node->issueCycle);
        }
        // Issue wait: ready -> issue.
        if (node->issueCycle > node->readyCycle) {
            attribute(*node, node->waitCause,
                      node->issueCycle - node->readyCycle);
        }
        // Link: predecessor commit -> ready.
        if (node->parentSeq == noProfSeq) {
            attribute(*node, node->linkCause, node->readyCycle);
            break;
        }
        const ProfNode *parent = prof.findBySeq(node->parentSeq);
        if (!parent) {
            // Predecessor fell past the recording cap; attribute
            // the rest of the timeline to the link and stop.
            attribute(*node, node->linkCause, node->readyCycle);
            report.truncated = true;
            break;
        }
        if (node->readyCycle > parent->commitCycle) {
            attribute(*node, node->linkCause,
                      node->readyCycle - parent->commitCycle);
        }
        node = parent;
    }

    report.byInstruction.reserve(by_inst.size());
    for (auto &[id, spot] : by_inst)
        report.byInstruction.push_back(std::move(spot));
    report.byBlock.reserve(by_block.size());
    for (auto &[key, spot] : by_block)
        report.byBlock.push_back(std::move(spot));
    rankHotspots(report.byInstruction);
    rankHotspots(report.byBlock);
    return report;
}

void
CriticalPathReport::writeJson(std::ostream &os) const
{
    os << "{\"schema\":\"salam-critical-path-1\""
       << ",\"path_cycles\":" << pathCycles
       << ",\"sink_commit_cycle\":" << sinkCommitCycle
       << ",\"path_nodes\":" << pathNodes
       << ",\"recorded_nodes\":" << recordedNodes
       << ",\"dropped_nodes\":" << droppedNodes
       << ",\"truncated\":" << (truncated ? "true" : "false")
       << ",\"causes\":";
    writeCauses(os, causeCycles);
    os << ",\"by_instruction\":";
    writeHotspots(os, byInstruction, true);
    os << ",\"by_block\":";
    writeHotspots(os, byBlock, false);
    os << ",\"external_waits\":{";
    bool first = true;
    for (const auto &[what, ticks] : externalWaits) {
        if (!first)
            os << ",";
        first = false;
        os << "\"" << jsonEscape(what) << "\":" << ticks;
    }
    os << "}}";
}

bool
CriticalPathReport::writeJsonFile(const std::string &path) const
{
    std::ofstream os(path);
    if (!os)
        return false;
    writeJson(os);
    os << "\n";
    return static_cast<bool>(os);
}

void
CriticalPathReport::writeFolded(std::ostream &os) const
{
    // One frame stack per (instruction, cause) with its cycle count;
    // flamegraph.pl and speedscope both accept this directly.
    for (const Hotspot &h : byInstruction) {
        for (unsigned c = 0; c < numProfCauses; ++c) {
            if (!h.causeCycles[c])
                continue;
            os << h.func << ";" << h.block << ";" << h.inst << " ("
               << h.opcode << ");" << profCauseName(ProfCause(c))
               << " " << h.causeCycles[c] << "\n";
        }
    }
}

bool
CriticalPathReport::writeFoldedFile(const std::string &path) const
{
    std::ofstream os(path);
    if (!os)
        return false;
    writeFolded(os);
    return static_cast<bool>(os);
}

} // namespace salam::obs

/**
 * @file
 * Minimal JSON emission helpers shared by the machine-readable dumps
 * (stats JSON, Chrome traces, run reports). Emission only — parsing
 * lives in the tests that validate these formats.
 */

#ifndef SALAM_OBS_JSON_HH
#define SALAM_OBS_JSON_HH

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

namespace salam::obs
{

/** Escape @p s for use inside a double-quoted JSON string. */
inline std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x",
                              static_cast<unsigned>(
                                  static_cast<unsigned char>(c)));
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

/** Render a double as a JSON number (never NaN/Inf, never locale). */
inline std::string
jsonNumber(double v)
{
    if (!std::isfinite(v))
        return "0";
    // Integral values print without a fraction so counters stay
    // exact and diffable.
    if (v == static_cast<double>(static_cast<long long>(v)) &&
        std::abs(v) < 9.0e15) {
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%lld",
                      static_cast<long long>(v));
        return buf;
    }
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.12g", v);
    return buf;
}

/**
 * Streaming JSON writer for nested structures (the state dumps the
 * watchdog emits). Handles comma placement and nesting; the caller is
 * responsible for balanced begin/end calls, which str() asserts.
 */
class JsonBuilder
{
  public:
    JsonBuilder &
    beginObject()
    {
        comma();
        out += '{';
        stack.push_back(false);
        return *this;
    }

    JsonBuilder &
    beginObject(const std::string &key)
    {
        writeKey(key);
        out += '{';
        stack.push_back(false);
        return *this;
    }

    JsonBuilder &
    endObject()
    {
        out += '}';
        pop();
        return *this;
    }

    JsonBuilder &
    beginArray()
    {
        comma();
        out += '[';
        stack.push_back(false);
        return *this;
    }

    JsonBuilder &
    beginArray(const std::string &key)
    {
        writeKey(key);
        out += '[';
        stack.push_back(false);
        return *this;
    }

    JsonBuilder &
    endArray()
    {
        out += ']';
        pop();
        return *this;
    }

    JsonBuilder &
    field(const std::string &key, const std::string &value)
    {
        writeKey(key);
        out += '"';
        out += jsonEscape(value);
        out += '"';
        return *this;
    }

    JsonBuilder &
    field(const std::string &key, const char *value)
    {
        return field(key, std::string(value));
    }

    JsonBuilder &
    field(const std::string &key, double value)
    {
        writeKey(key);
        out += jsonNumber(value);
        return *this;
    }

    JsonBuilder &
    field(const std::string &key, std::uint64_t value)
    {
        writeKey(key);
        char buf[24];
        std::snprintf(buf, sizeof(buf), "%llu",
                      static_cast<unsigned long long>(value));
        out += buf;
        return *this;
    }

    JsonBuilder &
    field(const std::string &key, unsigned value)
    {
        return field(key, static_cast<std::uint64_t>(value));
    }

    JsonBuilder &
    field(const std::string &key, bool value)
    {
        writeKey(key);
        out += value ? "true" : "false";
        return *this;
    }

    /** Splice @p json in verbatim (must itself be valid JSON). */
    JsonBuilder &
    fieldRaw(const std::string &key, const std::string &json)
    {
        writeKey(key);
        out += json;
        return *this;
    }

    /** Array-element string value. */
    JsonBuilder &
    value(const std::string &v)
    {
        comma();
        out += '"';
        out += jsonEscape(v);
        out += '"';
        return *this;
    }

    JsonBuilder &
    value(std::uint64_t v)
    {
        comma();
        char buf[24];
        std::snprintf(buf, sizeof(buf), "%llu",
                      static_cast<unsigned long long>(v));
        out += buf;
        return *this;
    }

    bool balanced() const { return stack.empty(); }

    const std::string &str() const { return out; }

  private:
    void
    comma()
    {
        if (!stack.empty()) {
            if (stack.back())
                out += ',';
            stack.back() = true;
        }
    }

    void
    writeKey(const std::string &key)
    {
        comma();
        out += '"';
        out += jsonEscape(key);
        out += "\":";
    }

    void
    pop()
    {
        if (!stack.empty())
            stack.pop_back();
    }

    std::string out;
    std::vector<bool> stack;
};

} // namespace salam::obs

#endif // SALAM_OBS_JSON_HH

/**
 * @file
 * Minimal JSON emission helpers shared by the machine-readable dumps
 * (stats JSON, Chrome traces, run reports). Emission only — parsing
 * lives in the tests that validate these formats.
 */

#ifndef SALAM_OBS_JSON_HH
#define SALAM_OBS_JSON_HH

#include <cmath>
#include <cstdio>
#include <string>

namespace salam::obs
{

/** Escape @p s for use inside a double-quoted JSON string. */
inline std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x",
                              static_cast<unsigned>(
                                  static_cast<unsigned char>(c)));
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

/** Render a double as a JSON number (never NaN/Inf, never locale). */
inline std::string
jsonNumber(double v)
{
    if (!std::isfinite(v))
        return "0";
    // Integral values print without a fraction so counters stay
    // exact and diffable.
    if (v == static_cast<double>(static_cast<long long>(v)) &&
        std::abs(v) < 9.0e15) {
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%lld",
                      static_cast<long long>(v));
        return buf;
    }
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.12g", v);
    return buf;
}

} // namespace salam::obs

#endif // SALAM_OBS_JSON_HH

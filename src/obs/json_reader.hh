/**
 * @file
 * A minimal recursive-descent JSON reader for the observability
 * layer's own outputs.
 *
 * Historically the simulator only *emitted* JSON and parsing lived in
 * the tests. The run-results store changed that: `ResultStore` record
 * files and `salam-query` both read back the JSON the emitters
 * produced, so the parser now lives here and the test-support header
 * aliases it. It supports the full grammar the emitters use — objects,
 * arrays, strings with escapes, numbers, booleans, null — and throws
 * std::runtime_error with a byte offset on malformed input, which
 * lets store loading skip-and-warn on exactly the corrupt line.
 */

#ifndef SALAM_OBS_JSON_READER_HH
#define SALAM_OBS_JSON_READER_HH

#include <cctype>
#include <cstdlib>
#include <map>
#include <stdexcept>
#include <string>
#include <vector>

namespace salam::obs
{

/** One parsed JSON value. */
struct JsonValue
{
    enum class Kind
    {
        Null,
        Bool,
        Number,
        String,
        Array,
        Object
    };

    Kind kind = Kind::Null;
    bool boolean = false;
    double number = 0.0;
    std::string string;
    std::vector<JsonValue> array;
    std::map<std::string, JsonValue> object;

    bool isObject() const { return kind == Kind::Object; }

    bool isArray() const { return kind == Kind::Array; }

    bool isNumber() const { return kind == Kind::Number; }

    bool isString() const { return kind == Kind::String; }

    bool has(const std::string &key) const
    { return isObject() && object.count(key) > 0; }

    /** Member access; throws when absent (loud failures). */
    const JsonValue &
    at(const std::string &key) const
    {
        auto it = object.find(key);
        if (it == object.end())
            throw std::runtime_error("missing key '" + key + "'");
        return it->second;
    }

    /** object[key] as a string, or @p dflt when absent/not string. */
    std::string
    stringOr(const std::string &key, const std::string &dflt) const
    {
        auto it = object.find(key);
        if (it == object.end() || !it->second.isString())
            return dflt;
        return it->second.string;
    }

    /** object[key] as a number, or @p dflt when absent/not number. */
    double
    numberOr(const std::string &key, double dflt) const
    {
        auto it = object.find(key);
        if (it == object.end() || !it->second.isNumber())
            return dflt;
        return it->second.number;
    }
};

/** Parser state over one input string. */
class JsonReader
{
  public:
    explicit JsonReader(const std::string &text) : text(text) {}

    JsonValue
    parse()
    {
        JsonValue value = parseValue();
        skipSpace();
        if (pos != text.size())
            fail("trailing characters");
        return value;
    }

  private:
    [[noreturn]] void
    fail(const std::string &what) const
    {
        throw std::runtime_error("JSON error at byte " +
                                 std::to_string(pos) + ": " + what);
    }

    void
    skipSpace()
    {
        while (pos < text.size() &&
               std::isspace(static_cast<unsigned char>(text[pos]))) {
            ++pos;
        }
    }

    char
    peek()
    {
        skipSpace();
        if (pos >= text.size())
            fail("unexpected end of input");
        return text[pos];
    }

    void
    expect(char c)
    {
        if (peek() != c)
            fail(std::string("expected '") + c + "'");
        ++pos;
    }

    bool
    consumeLiteral(const char *literal)
    {
        std::size_t len = std::string(literal).size();
        if (text.compare(pos, len, literal) == 0) {
            pos += len;
            return true;
        }
        return false;
    }

    JsonValue
    parseValue()
    {
        switch (peek()) {
          case '{':
            return parseObject();
          case '[':
            return parseArray();
          case '"': {
            JsonValue v;
            v.kind = JsonValue::Kind::String;
            v.string = parseString();
            return v;
          }
          case 't':
          case 'f': {
            JsonValue v;
            v.kind = JsonValue::Kind::Bool;
            if (consumeLiteral("true"))
                v.boolean = true;
            else if (consumeLiteral("false"))
                v.boolean = false;
            else
                fail("bad literal");
            return v;
          }
          case 'n': {
            if (!consumeLiteral("null"))
                fail("bad literal");
            return JsonValue{};
          }
          default:
            return parseNumber();
        }
    }

    JsonValue
    parseObject()
    {
        expect('{');
        JsonValue v;
        v.kind = JsonValue::Kind::Object;
        if (peek() == '}') {
            ++pos;
            return v;
        }
        while (true) {
            std::string key = parseString();
            expect(':');
            v.object[key] = parseValue();
            char c = peek();
            ++pos;
            if (c == '}')
                return v;
            if (c != ',')
                fail("expected ',' or '}' in object");
        }
    }

    JsonValue
    parseArray()
    {
        expect('[');
        JsonValue v;
        v.kind = JsonValue::Kind::Array;
        if (peek() == ']') {
            ++pos;
            return v;
        }
        while (true) {
            v.array.push_back(parseValue());
            char c = peek();
            ++pos;
            if (c == ']')
                return v;
            if (c != ',')
                fail("expected ',' or ']' in array");
        }
    }

    std::string
    parseString()
    {
        expect('"');
        std::string out;
        while (true) {
            if (pos >= text.size())
                fail("unterminated string");
            char c = text[pos++];
            if (c == '"')
                return out;
            if (c != '\\') {
                out.push_back(c);
                continue;
            }
            if (pos >= text.size())
                fail("dangling escape");
            char esc = text[pos++];
            switch (esc) {
              case '"': out.push_back('"'); break;
              case '\\': out.push_back('\\'); break;
              case '/': out.push_back('/'); break;
              case 'b': out.push_back('\b'); break;
              case 'f': out.push_back('\f'); break;
              case 'n': out.push_back('\n'); break;
              case 'r': out.push_back('\r'); break;
              case 't': out.push_back('\t'); break;
              case 'u': {
                if (pos + 4 > text.size())
                    fail("short \\u escape");
                // Byte fidelity only needed for ASCII escapes (the
                // emitters never produce anything else).
                unsigned code = static_cast<unsigned>(std::strtoul(
                    text.substr(pos, 4).c_str(), nullptr, 16));
                pos += 4;
                if (code < 0x80) {
                    out.push_back(static_cast<char>(code));
                } else {
                    out.push_back('?');
                }
                break;
              }
              default:
                fail("bad escape");
            }
        }
    }

    JsonValue
    parseNumber()
    {
        skipSpace();
        std::size_t start = pos;
        if (pos < text.size() && (text[pos] == '-' || text[pos] == '+'))
            ++pos;
        bool any = false;
        while (pos < text.size() &&
               (std::isdigit(static_cast<unsigned char>(text[pos])) ||
                text[pos] == '.' || text[pos] == 'e' ||
                text[pos] == 'E' || text[pos] == '-' ||
                text[pos] == '+')) {
            ++pos;
            any = true;
        }
        if (!any)
            fail("expected a number");
        JsonValue v;
        v.kind = JsonValue::Kind::Number;
        v.number = std::strtod(text.substr(start, pos - start).c_str(),
                               nullptr);
        return v;
    }

    const std::string &text;
    std::size_t pos = 0;
};

/** Parse @p text; throws std::runtime_error on malformed input. */
inline JsonValue
parseJson(const std::string &text)
{
    return JsonReader(text).parse();
}

} // namespace salam::obs

#endif // SALAM_OBS_JSON_READER_HH

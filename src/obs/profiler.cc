#include "obs/profiler.hh"

namespace salam::obs
{

const char *
profCauseName(ProfCause cause)
{
    switch (cause) {
      case ProfCause::Start: return "start";
      case ProfCause::Control: return "control";
      case ProfCause::DataDep: return "data_dep";
      case ProfCause::FuContention: return "fu_contention";
      case ProfCause::MemOrdering: return "mem_ordering";
      case ProfCause::MemPort: return "mem_port";
      case ProfCause::Compute: return "compute";
      case ProfCause::MemResponse: return "mem_response";
      case ProfCause::CacheMiss: return "cache_miss";
      case ProfCause::BankConflict: return "bank_conflict";
      case ProfCause::MemQueue: return "mem_queue";
      case ProfCause::DmaWait: return "dma_wait";
      case ProfCause::BusArbitration: return "bus_arbitration";
      case ProfCause::CreditStall: return "credit_stall";
    }
    return "unknown";
}

} // namespace salam::obs

#include "debug_flags.hh"

#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <vector>

namespace salam::obs
{

DebugFlag::DebugFlag(const char *name, const char *desc)
    : _name(name), _desc(desc)
{
    _id = DebugFlagRegistry::instance().registerFlag(this);
}

DebugFlagRegistry &
DebugFlagRegistry::instance()
{
    static DebugFlagRegistry registry;
    return registry;
}

unsigned
DebugFlagRegistry::registerFlag(DebugFlag *flag)
{
    // SimContext packs enable bits into one 64-bit mask; growing past
    // that needs a wider mask, so fail loudly at static init.
    if (entries.size() >= 64) {
        std::fputs("too many debug flags for the SimContext mask\n",
                   stderr);
        std::abort();
    }
    entries.push_back(flag);
    return static_cast<unsigned>(entries.size() - 1);
}

DebugFlag *
DebugFlagRegistry::find(const std::string &name) const
{
    for (DebugFlag *flag : entries) {
        if (name == flag->name())
            return flag;
    }
    return nullptr;
}

bool
DebugFlagRegistry::setEnabled(const std::string &name, bool on)
{
    if (name == "All") {
        for (DebugFlag *flag : entries) {
            if (on)
                flag->enable();
            else
                flag->disable();
        }
        return true;
    }
    DebugFlag *flag = find(name);
    if (flag == nullptr)
        return false;
    if (on)
        flag->enable();
    else
        flag->disable();
    return true;
}

bool
DebugFlagRegistry::applySpec(const std::string &spec)
{
    bool all_known = true;
    std::size_t pos = 0;
    while (pos <= spec.size()) {
        std::size_t comma = spec.find(',', pos);
        if (comma == std::string::npos)
            comma = spec.size();
        std::string item = spec.substr(pos, comma - pos);
        pos = comma + 1;
        if (item.empty())
            continue;
        bool on = true;
        if (item[0] == '-') {
            on = false;
            item.erase(0, 1);
        }
        all_known &= setEnabled(item, on);
    }
    return all_known;
}

std::string
DebugFlagRegistry::applySpecStrict(const std::string &spec)
{
    // Pass 1: validate every element so nothing is applied when the
    // spec contains a typo.
    std::size_t pos = 0;
    while (pos <= spec.size()) {
        std::size_t comma = spec.find(',', pos);
        if (comma == std::string::npos)
            comma = spec.size();
        std::string item = spec.substr(pos, comma - pos);
        pos = comma + 1;
        if (item.empty())
            continue;
        if (item[0] == '-')
            item.erase(0, 1);
        if (item != "All" && find(item) == nullptr) {
            std::string message = "unknown debug flag '" + item +
                "'; valid flags: All";
            for (const DebugFlag *flag : entries) {
                message += ", ";
                message += flag->name();
            }
            return message;
        }
    }
    // Pass 2: every name checked out, so plain applySpec succeeds.
    applySpec(spec);
    return "";
}

void
DebugFlagRegistry::disableAll()
{
    for (DebugFlag *flag : entries)
        flag->disable();
}

void
traceMessage(const DebugFlag &flag, std::uint64_t tick,
             const std::string &object, const char *fmt, ...)
{
    char stamp[64];
    std::snprintf(stamp, sizeof(stamp), "%12llu: ",
                  static_cast<unsigned long long>(tick));

    va_list args;
    va_start(args, fmt);
    va_list args_copy;
    va_copy(args_copy, args);
    int len = std::vsnprintf(nullptr, 0, fmt, args);
    va_end(args);
    std::string body;
    if (len < 0) {
        body = fmt;
    } else {
        std::vector<char> buf(static_cast<std::size_t>(len) + 1);
        std::vsnprintf(buf.data(), buf.size(), fmt, args_copy);
        body.assign(buf.data(), static_cast<std::size_t>(len));
    }
    va_end(args_copy);

    std::string line = stamp;
    line += object;
    line += ": ";
    line += body;
    (void)flag;
    DebugFlagRegistry::instance().emit(line);
}

namespace flag
{
DebugFlag RuntimeEngine("RuntimeEngine",
                        "runtime engine per-cycle scheduling");
DebugFlag Issue("Issue", "per-instruction issue and commit");
DebugFlag Comm("Comm", "communications interface activity");
DebugFlag DMA("DMA", "DMA transfers and bursts");
DebugFlag Cache("Cache", "cache hits, misses, and fills");
DebugFlag Scratchpad("Scratchpad",
                     "scratchpad service and bank conflicts");
DebugFlag Crossbar("Crossbar", "crossbar routing");
DebugFlag AxiBus("AxiBus", "AXI-like bus arbitration and bursts");
DebugFlag Port("Port", "port binding and protocol");
DebugFlag Scheduler("Scheduler", "HLS static scheduler");
DebugFlag Event("Event", "event-queue servicing");
DebugFlag Inform("Inform", "inform() status messages");
DebugFlag Warn("Warn", "warn() messages");
DebugFlag Profile("Profile", "dynamic-CDFG profiler recording");
} // namespace flag

} // namespace salam::obs

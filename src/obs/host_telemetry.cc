#include "host_telemetry.hh"

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "json.hh"

namespace salam::obs
{

const char *
hostPhaseName(HostPhase phase)
{
    switch (phase) {
      case HostPhase::Elaboration: return "elaboration";
      case HostPhase::EngineSchedule: return "engine_schedule";
      case HostPhase::MemoryModel: return "memory_model";
      case HostPhase::EventLoop: return "event_loop";
      case HostPhase::StatsEmit: return "stats_emit";
      case HostPhase::ReportIo: return "report_io";
      case HostPhase::Other: return "other";
    }
    return "unknown";
}

std::uint64_t
sampleRssPeakKb()
{
#if defined(__linux__)
    std::FILE *f = std::fopen("/proc/self/status", "r");
    if (f == nullptr)
        return 0;
    char line[256];
    std::uint64_t kb = 0;
    while (std::fgets(line, sizeof(line), f) != nullptr) {
        unsigned long long value = 0;
        if (std::sscanf(line, "VmHWM: %llu kB", &value) == 1) {
            kb = value;
            break;
        }
    }
    std::fclose(f);
    return kb;
#else
    return 0;
#endif
}

namespace
{

/**
 * Registry of live TimedMutex instances. Guarded by a plain mutex:
 * registration happens at (mostly static) construction and snapshots
 * are rare; the hot path — lock()/unlock() on a registered mutex —
 * never touches the registry.
 */
struct MutexRegistry
{
    std::mutex guard;
    std::vector<TimedMutex *> live;

    static MutexRegistry &
    instance()
    {
        // Leaked intentionally: TimedMutexes with static storage
        // duration may be destroyed after any registry object with
        // static duration would be.
        static MutexRegistry *reg = new MutexRegistry();
        return *reg;
    }
};

} // namespace

TimedMutex::TimedMutex(std::string name) : mutexName(std::move(name))
{
    MutexRegistry &reg = MutexRegistry::instance();
    std::lock_guard<std::mutex> hold(reg.guard);
    reg.live.push_back(this);
}

TimedMutex::~TimedMutex()
{
    MutexRegistry &reg = MutexRegistry::instance();
    std::lock_guard<std::mutex> hold(reg.guard);
    reg.live.erase(
        std::remove(reg.live.begin(), reg.live.end(), this),
        reg.live.end());
}

TimedMutex::Stats
TimedMutex::stats() const
{
    Stats s;
    s.name = mutexName;
    s.acquisitions = acq.load(std::memory_order_relaxed);
    s.contended = cont.load(std::memory_order_relaxed);
    s.waitNanos = waitNs.load(std::memory_order_relaxed);
    return s;
}

std::vector<TimedMutex::Stats>
TimedMutex::snapshotAll()
{
    MutexRegistry &reg = MutexRegistry::instance();
    std::lock_guard<std::mutex> hold(reg.guard);
    std::vector<Stats> out;
    out.reserve(reg.live.size());
    for (const TimedMutex *m : reg.live)
        out.push_back(m->stats());
    return out;
}

std::uint64_t
TimedMutex::totalWaitNanos()
{
    MutexRegistry &reg = MutexRegistry::instance();
    std::lock_guard<std::mutex> hold(reg.guard);
    std::uint64_t total = 0;
    for (const TimedMutex *m : reg.live)
        total += m->waitNs.load(std::memory_order_relaxed);
    return total;
}

std::uint64_t
HostTelemetry::selfNanosTotal() const
{
    std::uint64_t sum = 0;
    for (const PhaseTotals &t : totals)
        sum += t.selfNanos;
    return sum;
}

void
HostTelemetry::mergeFrom(const HostTelemetry &other)
{
    for (unsigned i = 0; i < numHostPhases; ++i) {
        totals[i].count += other.totals[i].count;
        totals[i].totalNanos += other.totals[i].totalNanos;
        totals[i].selfNanos += other.totals[i].selfNanos;
    }
    arenaHitCount += other.arenaHitCount;
    arenaMissCount += other.arenaMissCount;
    peakRssKbValue = std::max(peakRssKbValue, other.peakRssKbValue);
}

namespace
{

void
writePhasesAndAlloc(JsonBuilder &json, const HostTelemetry &tel)
{
    json.beginObject("phases");
    for (unsigned i = 0; i < numHostPhases; ++i) {
        const PhaseTotals &t = tel.phases()[i];
        json.beginObject(hostPhaseName(static_cast<HostPhase>(i)))
            .field("count", t.count)
            .field("seconds",
                   static_cast<double>(t.totalNanos) / 1e9)
            .field("self_seconds",
                   static_cast<double>(t.selfNanos) / 1e9)
            .endObject();
    }
    json.endObject();
    json.field("self_seconds_total",
               static_cast<double>(tel.selfNanosTotal()) / 1e9);
    json.beginObject("alloc")
        .field("arena_hits", tel.arenaHits())
        .field("arena_misses", tel.arenaMisses())
        .field("peak_rss_kb", tel.peakRssKb())
        .endObject();
}

void
writeLockArray(JsonBuilder &json)
{
    json.beginArray("locks");
    for (const TimedMutex::Stats &s : TimedMutex::snapshotAll()) {
        json.beginObject()
            .field("name", s.name)
            .field("acquisitions", s.acquisitions)
            .field("contended", s.contended)
            .field("wait_seconds",
                   static_cast<double>(s.waitNanos) / 1e9)
            .endObject();
    }
    json.endArray();
}

} // namespace

void
HostTelemetry::writeJson(std::ostream &os) const
{
    JsonBuilder json;
    json.beginObject();
    json.field("schema", "host_telemetry_v1");
    writePhasesAndAlloc(json, *this);
    json.endObject();
    os << json.str();
}

std::string
HostTelemetry::dumpJsonString() const
{
    std::ostringstream os;
    writeJson(os);
    return os.str();
}

void
HostTelemetry::writeJsonWithLocks(std::ostream &os) const
{
    JsonBuilder json;
    json.beginObject();
    json.field("schema", "host_telemetry_v1");
    writePhasesAndAlloc(json, *this);
    writeLockArray(json);
    json.endObject();
    os << json.str();
}

} // namespace salam::obs

#include "trace_sink.hh"

#include <cstdio>
#include <fstream>

#include "json.hh"

namespace salam::obs
{

namespace
{

/** Ticks (ps) to Chrome microseconds, keeping the fraction. */
std::string
ticksToUs(std::uint64_t tick)
{
    char buf[48];
    std::snprintf(buf, sizeof(buf), "%llu.%06llu",
                  static_cast<unsigned long long>(tick / 1000000),
                  static_cast<unsigned long long>(tick % 1000000));
    return buf;
}

void
writeArgs(std::ostream &os,
          const std::vector<std::pair<std::string, double>> &args)
{
    os << "{";
    bool first = true;
    for (const auto &[key, value] : args) {
        if (!first)
            os << ",";
        first = false;
        os << '"' << jsonEscape(key) << "\":" << jsonNumber(value);
    }
    os << "}";
}

} // namespace

void
TraceSink::writeChromeTrace(std::ostream &os) const
{
    // Stable (pid, object) -> tid mapping in first-seen order,
    // announced with thread_name metadata so viewers label the
    // tracks. Tids are per-pid: Chrome namespaces them by process.
    std::map<std::pair<int, std::string>, int> tids;
    std::map<int, int> nextTid;
    bool multiPid = false;
    for (const TraceRecord &record : records) {
        std::pair<int, std::string> key{record.pid, record.object};
        if (tids.find(key) == tids.end())
            tids.emplace(key, nextTid[record.pid]++);
    }
    multiPid = nextTid.size() > 1;

    os << "{\"displayTimeUnit\":\"ns\",\"traceEvents\":[";
    bool first = true;
    // Name the process groups only when both time domains are
    // present; single-domain traces keep the historical layout.
    if (multiPid) {
        for (int pid : {tracePidSimulated, tracePidHost}) {
            if (nextTid.find(pid) == nextTid.end())
                continue;
            if (!first)
                os << ",";
            first = false;
            os << "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":"
               << pid << ",\"tid\":0,\"args\":{\"name\":\""
               << (pid == tracePidHost ? "host (wall time)"
                                       : "simulated time")
               << "\"}}";
        }
    }
    for (const auto &[key, tid] : tids) {
        if (!first)
            os << ",";
        first = false;
        os << "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":"
           << key.first << ",\"tid\":" << tid
           << ",\"args\":{\"name\":\"" << jsonEscape(key.second)
           << "\"}}";
    }
    for (const TraceRecord &record : records) {
        if (!first)
            os << ",";
        first = false;
        int tid = tids[{record.pid, record.object}];
        os << "{\"name\":\"" << jsonEscape(record.name)
           << "\",\"cat\":\"" << jsonEscape(record.category)
           << "\",\"ph\":\"" << record.phase
           << "\",\"ts\":" << ticksToUs(record.tick)
           << ",\"pid\":" << record.pid << ",\"tid\":" << tid;
        if (record.phase == 'X')
            os << ",\"dur\":" << ticksToUs(record.dur);
        if (record.phase == 'i')
            os << ",\"s\":\"t\"";
        if (!record.args.empty() || record.phase == 'C') {
            os << ",\"args\":";
            writeArgs(os, record.args);
        }
        os << "}";
    }
    os << "]}\n";
}

bool
TraceSink::writeChromeTraceFile(const std::string &path) const
{
    std::ofstream os(path);
    if (!os)
        return false;
    writeChromeTrace(os);
    return static_cast<bool>(os);
}

} // namespace salam::obs

#include "trace_sink.hh"

#include <cstdio>
#include <fstream>

#include "json.hh"

namespace salam::obs
{

namespace
{

/** Ticks (ps) to Chrome microseconds, keeping the fraction. */
std::string
ticksToUs(std::uint64_t tick)
{
    char buf[48];
    std::snprintf(buf, sizeof(buf), "%llu.%06llu",
                  static_cast<unsigned long long>(tick / 1000000),
                  static_cast<unsigned long long>(tick % 1000000));
    return buf;
}

void
writeArgs(std::ostream &os,
          const std::vector<std::pair<std::string, double>> &args)
{
    os << "{";
    bool first = true;
    for (const auto &[key, value] : args) {
        if (!first)
            os << ",";
        first = false;
        os << '"' << jsonEscape(key) << "\":" << jsonNumber(value);
    }
    os << "}";
}

} // namespace

void
TraceSink::writeChromeTrace(std::ostream &os) const
{
    // Stable object -> tid mapping in first-seen order, announced
    // with thread_name metadata so viewers label the tracks.
    std::map<std::string, int> tids;
    for (const TraceRecord &record : records) {
        if (tids.find(record.object) == tids.end()) {
            int tid = static_cast<int>(tids.size());
            tids.emplace(record.object, tid);
        }
    }

    os << "{\"displayTimeUnit\":\"ns\",\"traceEvents\":[";
    bool first = true;
    for (const auto &[object, tid] : tids) {
        if (!first)
            os << ",";
        first = false;
        os << "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,"
           << "\"tid\":" << tid << ",\"args\":{\"name\":\""
           << jsonEscape(object) << "\"}}";
    }
    for (const TraceRecord &record : records) {
        if (!first)
            os << ",";
        first = false;
        int tid = tids[record.object];
        os << "{\"name\":\"" << jsonEscape(record.name)
           << "\",\"cat\":\"" << jsonEscape(record.category)
           << "\",\"ph\":\"" << record.phase
           << "\",\"ts\":" << ticksToUs(record.tick)
           << ",\"pid\":0,\"tid\":" << tid;
        if (record.phase == 'X')
            os << ",\"dur\":" << ticksToUs(record.dur);
        if (record.phase == 'i')
            os << ",\"s\":\"t\"";
        if (!record.args.empty() || record.phase == 'C') {
            os << ",\"args\":";
            writeArgs(os, record.args);
        }
        os << "}";
    }
    os << "]}\n";
}

bool
TraceSink::writeChromeTraceFile(const std::string &path) const
{
    std::ofstream os(path);
    if (!os)
        return false;
    writeChromeTrace(os);
    return static_cast<bool>(os);
}

} // namespace salam::obs

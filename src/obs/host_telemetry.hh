/**
 * @file
 * Host-performance telemetry: where does the *simulator's own*
 * wall-clock time go?
 *
 * The PR 1/2 observability layers answer questions about the modeled
 * hardware (simulated ticks, stall causes, critical paths). This
 * subsystem answers the orthogonal question the parallel-sweep work
 * keeps running into: which host-side activity — elaboration, engine
 * scheduling, memory/DMA modeling, event-queue bookkeeping, stats and
 * trace emission, report I/O — the real seconds are spent in, and how
 * much of a multi-threaded sweep is lost to lock contention, queue
 * wait, and serial sections.
 *
 * Three instruments:
 *
 *  - Phase timers (HostPhase + ScopedHostPhase + the EventQueue's
 *    batched per-event attribution). A HostTelemetry object hangs off
 *    a SimContext; because a context is thread-bound, accumulation
 *    needs no synchronization. When no telemetry is attached the cost
 *    of an instrumented scope is one thread-local read and a branch.
 *
 *  - TimedMutex: a drop-in std::mutex wrapper that counts
 *    acquisitions, contended acquisitions, and nanoseconds spent
 *    waiting, and registers itself in a process-wide registry so the
 *    sweep report can name every shared lock and its wait share.
 *
 *  - Allocation-pressure counters: DynInst freelist-arena hits vs
 *    misses (merged from engine stats) and a peak-RSS sample, per
 *    point and aggregated per sweep.
 *
 * Ownership rule: one HostTelemetry belongs to at most one SimContext
 * at a time, and is only mutated by the thread that context is bound
 * to. Cross-thread aggregation (a sweep merging per-point telemetry)
 * happens through mergeFrom() under the caller's lock.
 */

#ifndef SALAM_OBS_HOST_TELEMETRY_HH
#define SALAM_OBS_HOST_TELEMETRY_HH

#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <mutex>
#include <ostream>
#include <string>
#include <vector>

#include "sim/sim_context.hh"
#include "trace_sink.hh"

namespace salam::obs
{

/** Host-side activity classes wall time is attributed to. */
enum class HostPhase : unsigned
{
    Elaboration,    ///< IR build/opt, object construction, seeding
    EngineSchedule, ///< compute-unit tick events (CDFG scheduling)
    MemoryModel,    ///< SPM/cache/xbar/DRAM/DMA/comm event handlers
    EventLoop,      ///< queue bookkeeping + unclassified events
    StatsEmit,      ///< stats dumps, trace export, profiler reports
    ReportIo,       ///< RunReport / aggregate-JSON file appends
    Other,          ///< host CPU model, watchdog, miscellaneous
};

inline constexpr unsigned numHostPhases = 7;

/** Stable lowercase name for JSON keys and trace labels. */
const char *hostPhaseName(HostPhase phase);

/** Wall-time totals for one phase. */
struct PhaseTotals
{
    std::uint64_t count = 0;      ///< scopes entered / events batched
    std::uint64_t totalNanos = 0; ///< inclusive wall time
    std::uint64_t selfNanos = 0;  ///< exclusive of nested phases
};

/** Monotonic wall clock in nanoseconds (steady_clock). */
inline std::uint64_t
hostNowNs()
{
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
}

/**
 * Peak resident-set sample in kB (VmHWM on Linux; 0 where the proc
 * interface is unavailable). Process-wide, monotone — useful as an
 * allocation-pressure high-water mark, not a per-point delta.
 */
std::uint64_t sampleRssPeakKb();

/**
 * A mutex that measures itself. lock() first tries the uncontended
 * path; only a failed try_lock counts as contended and starts the
 * wait timer. Counters are relaxed atomics so any thread can snapshot
 * them while the mutex is in use. Construction/destruction register
 * and unregister the instance in a process-wide registry keyed by
 * @p name (names need not be unique; snapshots report every
 * instance).
 */
class TimedMutex
{
  public:
    struct Stats
    {
        std::string name;
        std::uint64_t acquisitions = 0;
        std::uint64_t contended = 0;
        std::uint64_t waitNanos = 0;
    };

    explicit TimedMutex(std::string name);
    ~TimedMutex();

    TimedMutex(const TimedMutex &) = delete;
    TimedMutex &operator=(const TimedMutex &) = delete;

    void
    lock()
    {
        if (m.try_lock()) {
            acq.fetch_add(1, std::memory_order_relaxed);
            return;
        }
        cont.fetch_add(1, std::memory_order_relaxed);
        std::uint64_t t0 = hostNowNs();
        m.lock();
        waitNs.fetch_add(hostNowNs() - t0,
                         std::memory_order_relaxed);
        acq.fetch_add(1, std::memory_order_relaxed);
    }

    bool
    try_lock()
    {
        if (!m.try_lock())
            return false;
        acq.fetch_add(1, std::memory_order_relaxed);
        return true;
    }

    void unlock() { m.unlock(); }

    Stats stats() const;

    /** Snapshot every live TimedMutex in construction order. */
    static std::vector<Stats> snapshotAll();

    /**
     * Sum of waitNanos over every live mutex — the process-wide
     * lock-wait total a sweep differences across its run.
     */
    static std::uint64_t totalWaitNanos();

  private:
    std::string mutexName;
    std::mutex m;
    std::atomic<std::uint64_t> acq{0};
    std::atomic<std::uint64_t> cont{0};
    std::atomic<std::uint64_t> waitNs{0};
};

/**
 * Per-SimContext accumulator for host-side wall time and allocation
 * pressure. Attach with SimContext::setHostTelemetry(); detach (or
 * destroy the context binding) before the telemetry object dies.
 */
class HostTelemetry
{
  public:
    HostTelemetry() = default;

    // Copyable by design: sweep summaries keep merged snapshots.

    // --- phase accumulation (context-bound thread only) ---

    /** Open a phase frame; pair with endPhase(). */
    void
    beginPhase(HostPhase phase)
    {
        stack.push_back({phase, hostNowNs(), 0});
    }

    /** Close the innermost frame and attribute its wall time. */
    void
    endPhase()
    {
        Frame frame = stack.back();
        stack.pop_back();
        std::uint64_t elapsed = hostNowNs() - frame.startNs;
        PhaseTotals &t = totals[static_cast<unsigned>(frame.phase)];
        ++t.count;
        t.totalNanos += elapsed;
        t.selfNanos +=
            elapsed - std::min(frame.childNanos, elapsed);
        if (!stack.empty())
            stack.back().childNanos += elapsed;
    }

    /**
     * Bulk attribution from the event-queue dispatch loop: @p nanos
     * of already-exclusive time and @p count events for @p phase.
     * Counts as child time of any open scoped frame.
     */
    void
    addPhaseTime(HostPhase phase, std::uint64_t nanos,
                 std::uint64_t count)
    {
        PhaseTotals &t = totals[static_cast<unsigned>(phase)];
        t.count += count;
        t.totalNanos += nanos;
        t.selfNanos += nanos;
        if (!stack.empty())
            stack.back().childNanos += nanos;
    }

    const std::array<PhaseTotals, numHostPhases> &
    phases() const
    {
        return totals;
    }

    const PhaseTotals &
    phase(HostPhase p) const
    {
        return totals[static_cast<unsigned>(p)];
    }

    /** Sum of per-phase self time — the instrumented wall total. */
    std::uint64_t selfNanosTotal() const;

    // --- allocation pressure ---

    void
    noteArena(std::uint64_t hits, std::uint64_t misses)
    {
        arenaHitCount += hits;
        arenaMissCount += misses;
    }

    /** Update the peak-RSS high-water mark from /proc. */
    void
    samplePeakRss()
    {
        std::uint64_t kb = sampleRssPeakKb();
        if (kb > peakRssKbValue)
            peakRssKbValue = kb;
    }

    std::uint64_t arenaHits() const { return arenaHitCount; }

    std::uint64_t arenaMisses() const { return arenaMissCount; }

    std::uint64_t peakRssKb() const { return peakRssKbValue; }

    // --- sweep-point sim-trace capture ---

    /**
     * Ask the run executing under this telemetry to capture its
     * simulated-time trace records (a sweep enables this for one
     * representative point so the host-telemetry Chrome trace can
     * show simulated-time tracks next to the worker timelines).
     */
    void setSimTraceCapture(bool on) { wantSimTrace = on; }

    bool wantSimTraceCapture() const { return wantSimTrace; }

    void
    captureSimTrace(std::vector<TraceRecord> records)
    {
        simTrace = std::move(records);
    }

    const std::vector<TraceRecord> &
    capturedSimTrace() const
    {
        return simTrace;
    }

    // --- aggregation & output ---

    /** Fold @p other's phases and allocation counters into this. */
    void mergeFrom(const HostTelemetry &other);

    /**
     * One JSON object: {"phases": {...}, "alloc": {...}}. Lock stats
     * are process-wide, so they are reported by the sweep/run-level
     * writers (writeJsonWithLocks), not per point.
     */
    void writeJson(std::ostream &os) const;

    std::string dumpJsonString() const;

    /** writeJson plus a "locks" array from TimedMutex::snapshotAll. */
    void writeJsonWithLocks(std::ostream &os) const;

  private:
    struct Frame
    {
        HostPhase phase;
        std::uint64_t startNs;
        std::uint64_t childNanos;
    };

    std::array<PhaseTotals, numHostPhases> totals{};
    std::vector<Frame> stack;
    std::uint64_t arenaHitCount = 0;
    std::uint64_t arenaMissCount = 0;
    std::uint64_t peakRssKbValue = 0;
    bool wantSimTrace = false;
    std::vector<TraceRecord> simTrace;
};

/**
 * RAII phase scope against the calling thread's current SimContext.
 * No-op (one TLS read + branch) when that context carries no
 * telemetry.
 */
class ScopedHostPhase
{
  public:
    explicit ScopedHostPhase(HostPhase phase)
        : tel(SimContext::current().hostTelemetry())
    {
        if (tel != nullptr)
            tel->beginPhase(phase);
    }

    ~ScopedHostPhase()
    {
        if (tel != nullptr)
            tel->endPhase();
    }

    ScopedHostPhase(const ScopedHostPhase &) = delete;
    ScopedHostPhase &operator=(const ScopedHostPhase &) = delete;

  private:
    HostTelemetry *tel;
};

} // namespace salam::obs

#endif // SALAM_OBS_HOST_TELEMETRY_HH

/**
 * @file
 * TraceSink: tick-stamped event recording with Chrome trace export.
 *
 * Components record {tick, object, category, event} records — slices
 * with a duration, instant markers, and counter samples. The sink
 * renders them as Chrome trace_event JSON (the format chrome://tracing
 * and Perfetto load), mapping each object name to its own track so a
 * run's reservation/compute/memory-queue activity is visually
 * inspectable on a shared time axis.
 *
 * Ticks are picoseconds; Chrome timestamps are microseconds, so the
 * writer divides by 1e6 and keeps the fraction.
 */

#ifndef SALAM_OBS_TRACE_SINK_HH
#define SALAM_OBS_TRACE_SINK_HH

#include <cstdint>
#include <map>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

namespace salam::obs
{

/**
 * Process scopes for trace records. Simulated-time tracks live in
 * pid 0; host-telemetry tracks (sweep-worker timelines, whose "tick"
 * axis is wall nanoseconds × 1000) live in pid 1 so Perfetto shows
 * the two time domains as separate, side-by-side process groups in
 * one file.
 */
inline constexpr int tracePidSimulated = 0;
inline constexpr int tracePidHost = 1;

/** One recorded trace event. */
struct TraceRecord
{
    char phase = 'i';        ///< 'X' slice, 'i' instant, 'C' counter
    std::uint64_t tick = 0;  ///< start time (ps)
    std::uint64_t dur = 0;   ///< duration in ticks ('X' only)
    std::string object;      ///< emitting component (track name)
    std::string category;    ///< e.g. "engine", "mem", "dma"
    std::string name;        ///< event or counter-group name
    /** Numeric arguments; for counters these are the series. */
    std::vector<std::pair<std::string, double>> args;
    /** Chrome process id (tracePidSimulated / tracePidHost). */
    int pid = tracePidSimulated;
};

/** Collects trace records and exports Chrome trace_event JSON. */
class TraceSink
{
  public:
    /** @param max_records Cap on stored records (drops past it). */
    explicit TraceSink(std::size_t max_records = 4u << 20)
        : maxRecords(max_records)
    {}

    /** A slice spanning [start, start + duration). */
    void
    recordSlice(std::uint64_t start_tick, std::uint64_t duration,
                std::string object, std::string category,
                std::string name,
                std::vector<std::pair<std::string, double>> args = {},
                int pid = tracePidSimulated)
    {
        push({'X', start_tick, duration, std::move(object),
              std::move(category), std::move(name), std::move(args),
              pid});
    }

    /** A zero-duration marker. */
    void
    recordInstant(std::uint64_t tick, std::string object,
                  std::string category, std::string name,
                  std::vector<std::pair<std::string, double>> args = {},
                  int pid = tracePidSimulated)
    {
        push({'i', tick, 0, std::move(object), std::move(category),
              std::move(name), std::move(args), pid});
    }

    /**
     * A counter sample: each arg is one series of the counter group
     * @p name, plotted as a stacked area in the viewer.
     */
    void
    recordCounter(std::uint64_t tick, std::string object,
                  std::string name,
                  std::vector<std::pair<std::string, double>> series,
                  int pid = tracePidSimulated)
    {
        push({'C', tick, 0, std::move(object), "counter",
              std::move(name), std::move(series), pid});
    }

    /** Append an already-built record (trace merging). */
    void pushRecord(TraceRecord record) { push(std::move(record)); }

    std::size_t size() const { return records.size(); }

    /** Records discarded after the cap was hit. */
    std::uint64_t dropped() const { return droppedRecords; }

    bool empty() const { return records.empty(); }

    void
    clear()
    {
        records.clear();
        droppedRecords = 0;
    }

    const std::vector<TraceRecord> &events() const { return records; }

    /** Write the full Chrome trace_event JSON document. */
    void writeChromeTrace(std::ostream &os) const;

    /** Write to @p path; returns false (and warns) on I/O failure. */
    bool writeChromeTraceFile(const std::string &path) const;

  private:
    void
    push(TraceRecord record)
    {
        if (records.size() >= maxRecords) {
            ++droppedRecords;
            return;
        }
        records.push_back(std::move(record));
    }

    std::vector<TraceRecord> records;
    std::size_t maxRecords;
    std::uint64_t droppedRecords = 0;
};

} // namespace salam::obs

#endif // SALAM_OBS_TRACE_SINK_HH

/**
 * @file
 * Debug-flag tracing, following gem5's DebugFlag/DPRINTF conventions.
 *
 * Every traceable subsystem owns a named DebugFlag; SALAM_TRACE(flag,
 * fmt, ...) emits a tick-stamped, object-named line only while that
 * flag is enabled. Flag *names* are registered in a process-wide
 * registry (immutable after static init) so they can be toggled by
 * name at runtime ("RuntimeEngine,Cache", or "All"); the *enable
 * state* and the output sink live in the bound SimContext, so
 * concurrent simulations in one process (sweep workers) toggle and
 * capture trace output independently.
 *
 * Cost when a flag is disabled is one thread-local load plus a bit
 * test — the format arguments are never evaluated.
 */

#ifndef SALAM_OBS_DEBUG_FLAGS_HH
#define SALAM_OBS_DEBUG_FLAGS_HH

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "sim/sim_context.hh"

namespace salam::obs
{

/**
 * One named, independently-toggleable trace flag. The flag object
 * itself is immutable after registration; enabled() reads the bit
 * for this flag's dense id from the calling thread's SimContext.
 */
class DebugFlag
{
  public:
    /** Construction registers the flag in the global registry. */
    DebugFlag(const char *name, const char *desc);

    DebugFlag(const DebugFlag &) = delete;
    DebugFlag &operator=(const DebugFlag &) = delete;

    const char *name() const { return _name; }

    const char *description() const { return _desc; }

    /** Dense id, assigned in registration order; < 64. */
    unsigned id() const { return _id; }

    bool enabled() const
    { return SimContext::current().flagEnabled(_id); }

    void enable() const
    { SimContext::current().setFlagEnabled(_id, true); }

    void disable() const
    { SimContext::current().setFlagEnabled(_id, false); }

  private:
    const char *_name;
    const char *_desc;
    unsigned _id = 0;
};

/**
 * Process-wide flag *name* registry. Flags register themselves at
 * static-initialization time and the list is immutable afterwards, so
 * concurrent readers need no locking; all mutable state (enable bits,
 * sink) lives in the SimContext. The by-name mutators and the sink
 * setter operate on the calling thread's current context.
 */
class DebugFlagRegistry
{
  public:
    using Sink = std::function<void(const std::string &line)>;

    static DebugFlagRegistry &instance();

    /** Register @p flag; returns its dense id (static init only). */
    unsigned registerFlag(DebugFlag *flag);

    /** Find a flag by exact name; nullptr when absent. */
    DebugFlag *find(const std::string &name) const;

    /**
     * Enable/disable one flag by name; "All" matches every flag.
     * @return false when the name matches no flag.
     */
    bool setEnabled(const std::string &name, bool on);

    /**
     * Apply a comma-separated spec, e.g. "RuntimeEngine,Cache" or
     * "All,-Port" (a leading '-' disables that flag).
     * @return false when any element matched no flag.
     */
    bool applySpec(const std::string &spec);

    /**
     * Like applySpec(), but atomic: every name is validated before
     * anything is applied, so a typo cannot half-apply a spec.
     * @return an empty string on success; otherwise a diagnostic
     *         naming the first unknown flag and listing every valid
     *         flag name, with nothing applied.
     */
    std::string applySpecStrict(const std::string &spec);

    void disableAll();

    const std::vector<DebugFlag *> &flags() const { return entries; }

    /**
     * Replace the trace/log output sink *of the current SimContext*.
     * A null sink restores the default (stderr). Used by tests to
     * capture output.
     */
    void setSink(Sink sink)
    { SimContext::current().setLogSink(std::move(sink)); }

    /** Emit a formatted line through the current context's sink. */
    void emit(const std::string &line) const
    { SimContext::current().emitLog(line); }

  private:
    DebugFlagRegistry() = default;

    std::vector<DebugFlag *> entries;
};

/**
 * Format and emit one trace line: "<tick>: <object>: <message>".
 * Callers check flag.enabled() first (the SALAM_TRACE macros do).
 */
void traceMessage(const DebugFlag &flag, std::uint64_t tick,
                  const std::string &object, const char *fmt, ...)
    __attribute__((format(printf, 4, 5)));

/** The built-in flags, one per traceable subsystem. */
namespace flag
{
extern DebugFlag RuntimeEngine; ///< engine per-cycle summaries
extern DebugFlag Issue;         ///< per-instruction issue/commit
extern DebugFlag Comm;          ///< communications interface
extern DebugFlag DMA;           ///< DMA transfers and bursts
extern DebugFlag Cache;         ///< cache hits/misses/fills
extern DebugFlag Scratchpad;    ///< SPM service and bank conflicts
extern DebugFlag Crossbar;      ///< crossbar routing
extern DebugFlag AxiBus;        ///< AXI-like bus arbitration/bursts
extern DebugFlag Port;          ///< port binding and protocol
extern DebugFlag Scheduler;     ///< HLS static scheduler
extern DebugFlag Event;         ///< event-queue servicing
extern DebugFlag Inform;        ///< inform() status messages
extern DebugFlag Warn;          ///< warn() messages
extern DebugFlag Profile;       ///< dynamic-CDFG profiler recording
} // namespace flag

} // namespace salam::obs

/**
 * Tick-stamped trace from a SimObject member function (uses the
 * enclosing curTick()/name()).
 */
#define SALAM_TRACE(flagname, ...)                                     \
    do {                                                               \
        if (::salam::obs::flag::flagname.enabled()) {                  \
            ::salam::obs::traceMessage(                                \
                ::salam::obs::flag::flagname,                          \
                static_cast<std::uint64_t>(curTick()), name(),         \
                __VA_ARGS__);                                          \
        }                                                              \
    } while (0)

/** Trace with an explicit tick and object name (free contexts). */
#define SALAM_TRACE_AT(flagname, tick, object, ...)                    \
    do {                                                               \
        if (::salam::obs::flag::flagname.enabled()) {                  \
            ::salam::obs::traceMessage(                                \
                ::salam::obs::flag::flagname,                          \
                static_cast<std::uint64_t>(tick), (object),            \
                __VA_ARGS__);                                          \
        }                                                              \
    } while (0)

#endif // SALAM_OBS_DEBUG_FLAGS_HH

/**
 * @file
 * Critical-path analysis over the recorded dynamic CDFG.
 *
 * Post-run, walk backward from the last instruction instance to
 * commit, following each node's critical predecessor (the operand
 * producer or importing terminator that released it). Every cycle
 * between time zero and the sink's commit lands in exactly one
 * segment of exactly one node on that path — its link (waiting to be
 * released), wait (released but not issued), or execution span — and
 * each segment carries a ProfCause. The sum of the per-cause buckets
 * therefore equals the path length by construction, which is the
 * invariant the tests pin down.
 *
 * The per-node attributions are then aggregated by static
 * instruction and by basic block into ranked hotspot tables, written
 * as JSON (minijson-compatible) and as folded stacks for flamegraph
 * tooling.
 */

#ifndef SALAM_OBS_CRITICAL_PATH_HH
#define SALAM_OBS_CRITICAL_PATH_HH

#include <array>
#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>
#include <vector>

#include "obs/profiler.hh"

namespace salam::obs
{

/** Cycles attributed to one static instruction or basic block. */
struct Hotspot
{
    /** "func:block:inst (opcode)" for instructions, "func:block"
     *  for blocks. */
    std::string label;
    std::string func;
    std::string block;
    std::string inst;   ///< empty for block-level hotspots
    std::string opcode; ///< empty for block-level hotspots

    /** Critical-path cycles attributed here, by cause. */
    std::array<std::uint64_t, numProfCauses> causeCycles{};

    /** Dynamic instances of this site on the critical path. */
    std::uint64_t instances = 0;

    std::uint64_t
    cycles() const
    {
        std::uint64_t sum = 0;
        for (auto c : causeCycles)
            sum += c;
        return sum;
    }
};

/** Result of analyzeCriticalPath(). */
struct CriticalPathReport
{
    /** Sum of all attributed segments along the path. */
    std::uint64_t pathCycles = 0;

    /** Commit cycle of the sink node. Equals pathCycles unless the
     *  walk was truncated by a dropped predecessor. */
    std::uint64_t sinkCommitCycle = 0;

    /** Recorded nodes on the critical path. */
    std::uint64_t pathNodes = 0;

    /** Nodes recorded / dropped by the bounded profiler. */
    std::uint64_t recordedNodes = 0;
    std::uint64_t droppedNodes = 0;

    /** True when the walk hit a dropped predecessor and stopped. */
    bool truncated = false;

    /** Per-cause cycles; sums to pathCycles. */
    std::array<std::uint64_t, numProfCauses> causeCycles{};

    /** Hotspots ranked by cycles, descending. */
    std::vector<Hotspot> byInstruction;
    std::vector<Hotspot> byBlock;

    /** External busy time (e.g. DMA transfers), in ticks. */
    std::map<std::string, std::uint64_t> externalWaits;

    std::uint64_t
    causeTotal() const
    {
        std::uint64_t sum = 0;
        for (auto c : causeCycles)
            sum += c;
        return sum;
    }

    /** Path cycles attributable to the memory system. */
    std::uint64_t
    memoryCycles() const
    {
        return causeCycles[unsigned(ProfCause::MemOrdering)] +
            causeCycles[unsigned(ProfCause::MemPort)] +
            causeCycles[unsigned(ProfCause::MemResponse)] +
            causeCycles[unsigned(ProfCause::CacheMiss)] +
            causeCycles[unsigned(ProfCause::BankConflict)] +
            causeCycles[unsigned(ProfCause::MemQueue)] +
            causeCycles[unsigned(ProfCause::DmaWait)] +
            causeCycles[unsigned(ProfCause::BusArbitration)] +
            causeCycles[unsigned(ProfCause::CreditStall)];
    }

    /** Hotspot-report JSON (one object; minijson-parseable). */
    void writeJson(std::ostream &os) const;
    bool writeJsonFile(const std::string &path) const;

    /** Folded stacks: "func;block;inst;cause <cycles>" per line. */
    void writeFolded(std::ostream &os) const;
    bool writeFoldedFile(const std::string &path) const;
};

/**
 * Compute the critical path through @p prof's recorded graph.
 * Returns an empty report (pathCycles == 0) when nothing was
 * recorded.
 */
CriticalPathReport analyzeCriticalPath(const Profiler &prof);

} // namespace salam::obs

#endif // SALAM_OBS_CRITICAL_PATH_HH

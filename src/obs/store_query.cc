#include "store_query.hh"

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>
#include <set>

namespace salam::obs
{

namespace
{

/** Envelope/meta payload keys that are never worth diffing. */
bool
comparableField(const std::string &key)
{
    return key != "schema_version" && key != "timestamp_ns";
}

/**
 * Wall-clock fields jitter run to run; they are reported in the diff
 * but never decide whether a row "changed" — that is reserved for
 * deterministic simulation results (cycles, stalls, counters).
 */
bool
noisyField(const std::string &key)
{
    return key.size() >= 8 &&
           key.compare(key.size() - 8, 8, "_seconds") == 0;
}

} // namespace

std::vector<const LoadedRecord *>
orderedRuns(const StoreReader &reader, const RecordFilter &filter)
{
    RecordFilter f = filter;
    if (f.kind.empty())
        f.kind = "run";
    std::vector<const LoadedRecord *> runs = reader.select(f);
    std::stable_sort(
        runs.begin(), runs.end(),
        [](const LoadedRecord *x, const LoadedRecord *y) {
            if (x->kernel != y->kernel)
                return x->kernel < y->kernel;
            // Points first, in index order; non-sweep records keep
            // their load order after them.
            long px = x->point < 0 ? std::numeric_limits<long>::max()
                                   : x->point;
            long py = y->point < 0 ? std::numeric_limits<long>::max()
                                   : y->point;
            if (px != py)
                return px < py;
            return x->seq < y->seq;
        });
    return runs;
}

DiffReport
diffStores(const StoreReader &a, const StoreReader &b,
           const RecordFilter &filter, const std::string &only_field)
{
    DiffReport report;
    std::vector<const LoadedRecord *> runs_a = orderedRuns(a, filter);
    std::vector<const LoadedRecord *> runs_b = orderedRuns(b, filter);

    std::size_t n = std::max(runs_a.size(), runs_b.size());
    for (std::size_t i = 0; i < n; ++i) {
        DiffRow row;
        row.a = i < runs_a.size() ? runs_a[i] : nullptr;
        row.b = i < runs_b.size() ? runs_b[i] : nullptr;
        const LoadedRecord *any = row.a ? row.a : row.b;
        row.kernel = any->kernel;
        row.point = any->point;
        if (row.a == nullptr) {
            ++report.onlyInB;
            report.rows.push_back(std::move(row));
            continue;
        }
        if (row.b == nullptr) {
            ++report.onlyInA;
            report.rows.push_back(std::move(row));
            continue;
        }
        ++report.pairedRows;

        // Compare every numeric field the two payloads share.
        std::set<std::string> keys;
        for (const auto &[key, value] : row.a->record.object) {
            if (value.isNumber() && comparableField(key))
                keys.insert(key);
        }
        for (const std::string &key : keys) {
            if (!only_field.empty() && key != only_field)
                continue;
            if (!row.b->record.has(key) ||
                !row.b->record.at(key).isNumber())
                continue;
            DiffField field;
            field.key = key;
            field.a = row.a->record.at(key).number;
            field.b = row.b->record.at(key).number;
            field.delta = field.b - field.a;
            field.pct = field.a != 0.0
                            ? 100.0 * field.delta / field.a
                            : 0.0;
            if (field.delta != 0.0 && !noisyField(key))
                row.changed = true;
            row.fields.push_back(std::move(field));
        }
        if (row.changed)
            ++report.changedRows;
        report.rows.push_back(std::move(row));
    }
    return report;
}

RegressReport
regressAgainstBaseline(const StoreReader &reader,
                       const std::string &baseline_json,
                       double max_drop_pct, const std::string &kernel)
{
    RegressReport report;
    report.maxDropPct = max_drop_pct;

    JsonValue baseline;
    try {
        baseline = parseJson(baseline_json);
    } catch (const std::exception &e) {
        report.error = std::string("bad baseline JSON: ") + e.what();
        return report;
    }
    if (!baseline.isObject() || !baseline.has("kernels") ||
        !baseline.at("kernels").isArray()) {
        report.error = "baseline has no kernels array";
        return report;
    }
    double baseline_clock = baseline.numberOr("clock_period_ticks", 0);

    RecordFilter filter;
    filter.kind = "run";
    filter.outcome = "ok";
    std::vector<const LoadedRecord *> runs = reader.select(filter);

    bool all_pass = true;
    for (const JsonValue &entry : baseline.at("kernels").array) {
        if (!entry.isObject())
            continue;
        std::string name = entry.stringOr("kernel", "");
        if (name.empty() || (!kernel.empty() && name != kernel))
            continue;
        double base_rate = entry.numberOr("ticks_per_sec", 0.0);
        if (base_rate <= 0.0)
            continue;

        // Best observed rate across this kernel's ok records.
        double best = 0.0;
        for (const LoadedRecord *rec : runs) {
            if (rec->kernel != name)
                continue;
            double cycles = rec->number("cycles");
            double seconds = rec->number("sim_seconds");
            double clock =
                rec->number("clock_period_ticks", baseline_clock);
            if (cycles <= 0.0 || seconds <= 0.0 || clock <= 0.0)
                continue;
            best = std::max(best, cycles * clock / seconds);
        }
        if (best <= 0.0) {
            report.missingKernels.push_back(name);
            continue;
        }

        RegressRow row;
        row.kernel = name;
        row.baselineTicksPerSec = base_rate;
        row.currentTicksPerSec = best;
        row.ratio = best / base_rate;
        row.pass = row.ratio >= 1.0 - max_drop_pct / 100.0;
        all_pass = all_pass && row.pass;
        report.rows.push_back(std::move(row));
    }

    report.pass = all_pass && !report.rows.empty();
    if (report.rows.empty() && report.error.empty())
        report.error = "no store record matches any baseline kernel";
    return report;
}

std::vector<TopEntry>
topHotspots(const StoreReader &reader, std::size_t limit)
{
    RecordFilter filter;
    filter.kind = "profile";
    std::map<std::string, TopEntry> merged;
    for (const LoadedRecord *rec : reader.select(filter)) {
        if (!rec->record.has("by_instruction") ||
            !rec->record.at("by_instruction").isArray())
            continue;
        for (const JsonValue &spot :
             rec->record.at("by_instruction").array) {
            if (!spot.isObject())
                continue;
            std::string label = spot.stringOr("label", "");
            if (label.empty())
                continue;
            TopEntry &entry = merged[label];
            entry.label = label;
            entry.cycles += static_cast<std::uint64_t>(
                spot.numberOr("cycles", 0.0));
            entry.instances += static_cast<std::uint64_t>(
                spot.numberOr("instances", 0.0));
            entry.runs += 1;
        }
    }
    std::vector<TopEntry> out;
    out.reserve(merged.size());
    for (auto &[label, entry] : merged)
        out.push_back(std::move(entry));
    std::sort(out.begin(), out.end(),
              [](const TopEntry &x, const TopEntry &y) {
                  if (x.cycles != y.cycles)
                      return x.cycles > y.cycles;
                  return x.label < y.label;
              });
    if (out.size() > limit)
        out.resize(limit);
    return out;
}

} // namespace salam::obs

#include "obs/interval_stats.hh"

#include <fstream>
#include <ostream>
#include <utility>

#include "obs/json.hh"
#include "sim/logging.hh"

namespace salam::obs
{

IntervalStats::IntervalStats(EventQueue &queue,
                             StatRegistry &registry, Config config)
    : queue(queue), registry(registry), config(std::move(config))
{
    if (this->config.intervalTicks == 0)
        fatal("IntervalStats: interval must be > 0 ticks");
}

void
IntervalStats::start()
{
    if (started)
        return;
    started = true;
    lastBoundary = queue.curTick();
    if (energyProbe)
        lastEnergyPj = energyProbe();
    scheduleNext();
}

void
IntervalStats::scheduleNext()
{
    queue.schedule(lastBoundary + config.intervalTicks,
                   [this] { onBoundary(); }, "interval_stats",
                   obs::HostPhase::StatsEmit);
}

void
IntervalStats::onBoundary()
{
    // Stop rescheduling when the run is over — or, without a
    // predicate, when nothing else is pending (a lone interval event
    // would otherwise keep EventQueue::run() alive forever). The
    // partial interval since lastBoundary is captured by finalize().
    if (config.active ? !config.active() : queue.empty())
        return;
    captureRow(queue.curTick());
    registry.resetAll();
    lastBoundary = queue.curTick();
    scheduleNext();
}

void
IntervalStats::captureRow(Tick end)
{
    Row row;
    row.index = captured.size();
    row.startTick = lastBoundary;
    row.endTick = end;
    if (energyProbe) {
        double now_pj = energyProbe();
        double ns = static_cast<double>(end - lastBoundary) / 1e3;
        row.dynamicPowerMw =
            ns > 0.0 ? (now_pj - lastEnergyPj) / ns : 0.0;
        lastEnergyPj = now_pj;
    }
    row.statsJson = registry.dumpJsonString();
    captured.push_back(std::move(row));
}

void
IntervalStats::finalize()
{
    if (!started || finalized)
        return;
    finalized = true;
    // Tail partial interval; always emit at least one row so short
    // runs still produce a time series.
    if (queue.curTick() > lastBoundary || captured.empty())
        captureRow(queue.curTick());
    if (config.path.empty())
        return;
    std::ofstream os(config.path);
    if (!os)
        fatal("could not write interval stats to '%s'",
              config.path.c_str());
    writeJsonl(os);
    if (!os)
        fatal("error writing interval stats to '%s'",
              config.path.c_str());
}

void
IntervalStats::writeJsonl(std::ostream &os) const
{
    for (const Row &row : captured) {
        os << "{\"index\":" << row.index
           << ",\"start_tick\":" << row.startTick
           << ",\"end_tick\":" << row.endTick
           << ",\"dynamic_power_mw\":"
           << jsonNumber(row.dynamicPowerMw)
           << ",\"stats\":" << row.statsJson << "}\n";
    }
}

} // namespace salam::obs

/**
 * @file
 * Query operations over run-result stores: the logic behind the
 * `salam-query` CLI (list/show/diff/regress/top), kept as a library
 * so tests can drive it on synthetic stores without spawning the
 * tool.
 *
 * All operations work on StoreReader snapshots. Run records from a
 * sweep are ordered by (kernel, sweep point, load order) before
 * pairing, so diffing two sweeps compares point i against point i
 * regardless of which worker happened to finish first.
 */

#ifndef SALAM_OBS_STORE_QUERY_HH
#define SALAM_OBS_STORE_QUERY_HH

#include <cstdint>
#include <string>
#include <vector>

#include "result_store.hh"

namespace salam::obs
{

/** Run records matching @p filter in stable comparison order. */
std::vector<const LoadedRecord *>
orderedRuns(const StoreReader &reader, const RecordFilter &filter);

/** One numeric field compared between two paired records. */
struct DiffField
{
    std::string key;
    double a = 0.0;
    double b = 0.0;
    double delta = 0.0;

    /** Percent change b vs a; 0 when a == 0. */
    double pct = 0.0;
};

/** One pair of records (same position in both stores). */
struct DiffRow
{
    const LoadedRecord *a = nullptr; ///< null: only in store B
    const LoadedRecord *b = nullptr; ///< null: only in store A
    std::string kernel;
    long point = -1;
    std::vector<DiffField> fields;

    /** True when any compared field differs. */
    bool changed = false;
};

/** Field-level comparison of two stores' run records. */
struct DiffReport
{
    std::vector<DiffRow> rows;
    std::size_t pairedRows = 0;
    std::size_t changedRows = 0;
    std::size_t onlyInA = 0;
    std::size_t onlyInB = 0;
};

/**
 * Diff the run records of @p a and @p b (after @p filter), pairing
 * by (kernel, point, order). Every shared top-level numeric payload
 * field is compared; @p only_field restricts to one field when
 * non-empty. schema_version and timestamps are never compared.
 */
DiffReport diffStores(const StoreReader &a, const StoreReader &b,
                      const RecordFilter &filter,
                      const std::string &only_field = "");

/** One kernel's simulation-rate comparison against the baseline. */
struct RegressRow
{
    std::string kernel;
    double baselineTicksPerSec = 0.0;
    double currentTicksPerSec = 0.0;

    /** current / baseline. */
    double ratio = 0.0;
    bool pass = false;
};

/** Outcome of regressAgainstBaseline(). */
struct RegressReport
{
    std::vector<RegressRow> rows;

    /** Baseline kernels with no store record to compare. */
    std::vector<std::string> missingKernels;

    double maxDropPct = 0.0;

    /** True when every compared kernel stayed inside the budget
     *  and at least one comparison happened. */
    bool pass = false;

    std::string error; ///< non-empty when the baseline was unusable
};

/**
 * Gate a store against a recorded BENCH_simrate.json baseline
 * ({"clock_period_ticks":N,"kernels":[{"kernel","ticks_per_sec"}]}).
 * For each baseline kernel, the store's best observed simulation
 * rate (max over ok run records of cycles * clock_period /
 * sim_seconds; clock period from the record's clock_period_ticks
 * field, else the baseline's) must be within @p max_drop_pct percent
 * of the recorded rate. Best-of is used because a store may mix
 * configurations and oversubscribed parallel legs; a real engine
 * regression shifts the maximum too.
 */
RegressReport regressAgainstBaseline(const StoreReader &reader,
                                     const std::string &baseline_json,
                                     double max_drop_pct,
                                     const std::string &kernel = "");

/** One hotspot aggregated across profile records. */
struct TopEntry
{
    std::string label;
    std::uint64_t cycles = 0;
    std::uint64_t instances = 0;
    std::size_t runs = 0; ///< profile records naming this label
};

/**
 * Rank critical-path hotspots across every kind="profile" record
 * (by_instruction entries merged by label, descending cycles).
 */
std::vector<TopEntry> topHotspots(const StoreReader &reader,
                                  std::size_t limit = 20);

} // namespace salam::obs

#endif // SALAM_OBS_STORE_QUERY_HH

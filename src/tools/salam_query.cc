/**
 * @file
 * salam-query: inspect, compare, and gate run-result stores.
 *
 *   salam-query list    <store> [filters] [--json]
 *   salam-query show    <store> (--hash H | --seq N)
 *   salam-query diff    <storeA> <storeB> [filters] [--field F]
 *                       [--json]
 *   salam-query regress <store> --baseline <file>
 *                       [--max-drop-pct P] [--kernel K]
 *   salam-query top     <store> [--limit N] [--json]
 *   salam-query attempts <store> [--bench B] [--json]
 *
 * `attempts` audits sweep flakiness: every kind="attempt" record a
 * retrying sweep wrote (one per try of a point), plus which points
 * needed more than one attempt.
 *
 * Filters: --bench B --kernel K --outcome O --kind D.
 * A <store> is a directory written with --store-out, or a bare
 * RunReport JSONL file (ingested as kind="run" records).
 *
 * Exit codes: 0 success; 1 usage or I/O error; 2 `regress` found a
 * regression beyond the threshold (the CI-gate signal).
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <string>
#include <vector>

#include "drive/options.hh"
#include "obs/json.hh"
#include "obs/result_store.hh"
#include "obs/store_query.hh"

using namespace salam;

namespace
{

int
usage(const char *msg = nullptr)
{
    if (msg != nullptr)
        std::fprintf(stderr, "salam-query: %s\n", msg);
    std::fprintf(
        stderr,
        "usage:\n"
        "  salam-query list    <store> [--bench B] [--kernel K]\n"
        "                      [--outcome O] [--kind D] [--json]\n"
        "  salam-query show    <store> (--hash H | --seq N)\n"
        "  salam-query diff    <storeA> <storeB> [--kernel K]\n"
        "                      [--bench B] [--field F] [--json]\n"
        "  salam-query regress <store> --baseline <file>\n"
        "                      [--max-drop-pct P] [--kernel K]\n"
        "  salam-query top     <store> [--limit N] [--json]\n"
        "  salam-query attempts <store> [--bench B] [--json]\n");
    return 1;
}

struct Args
{
    std::vector<std::string> positional;
    obs::RecordFilter filter;
    std::string field;
    std::string baseline;
    std::string hash;
    long seq = -1;
    double maxDropPct = 20.0;
    std::size_t limit = 20;
    bool json = false;
};

bool
parseArgs(int argc, char **argv, Args &args, std::string &error)
{
    // Shared table-driven parser (drive/options.hh) in soft-error
    // mode: failures land in usage() with exit code 1, and the store
    // paths arrive as positional arguments.
    drive::OptionList table = {
        {"--bench", "<B>", "filter records by bench",
         [&](const std::string &v) { args.filter.bench = v; }},
        {"--kernel", "<K>", "filter records by kernel",
         [&](const std::string &v) { args.filter.kernel = v; }},
        {"--outcome", "<O>", "filter records by outcome",
         [&](const std::string &v) { args.filter.outcome = v; }},
        {"--kind", "<D>", "filter records by kind",
         [&](const std::string &v) { args.filter.kind = v; }},
        {"--field", "<F>", "diff only this payload field",
         [&](const std::string &v) { args.field = v; }},
        {"--baseline", "<file>", "regress baseline JSON",
         [&](const std::string &v) { args.baseline = v; }},
        {"--hash", "<H>", "select a record by config hash",
         [&](const std::string &v) { args.hash = v; }},
        {"--seq", "<N>", "select a record by store sequence",
         [&](const std::string &v) {
             args.seq = std::strtol(v.c_str(), nullptr, 10);
         }},
        {"--max-drop-pct", "<P>", "regression budget in percent",
         [&](const std::string &v) {
             args.maxDropPct = std::strtod(v.c_str(), nullptr);
         }},
        {"--limit", "<N>", "top-N entry budget",
         [&](const std::string &v) {
             args.limit = static_cast<std::size_t>(
                 std::strtoul(v.c_str(), nullptr, 10));
         }},
        {"--json", "", "machine-readable output",
         [&](const std::string &) { args.json = true; }},
    };
    drive::ParsePolicy policy;
    policy.program = "salam-query";
    policy.firstArg = 2;
    policy.handleHelp = false;
    policy.fatalErrors = false;
    policy.positionals = &args.positional;
    drive::ParseResult result =
        drive::parseOptions(argc, argv, table, policy);
    error = result.error;
    return result.ok;
}

obs::StoreReader
loadOrDie(const std::string &path, int &rc)
{
    obs::StoreReader reader = obs::StoreReader::load(path);
    if (!reader.ok()) {
        std::fprintf(stderr, "salam-query: %s\n",
                     reader.error().c_str());
        rc = 1;
        return reader;
    }
    for (const std::string &warning : reader.warnings())
        std::fprintf(stderr, "salam-query: warning: %s\n",
                     warning.c_str());
    rc = 0;
    return reader;
}

std::string
hex64(std::uint64_t v)
{
    char buf[2 + 16 + 1];
    std::snprintf(buf, sizeof(buf), "0x%016llx",
                  static_cast<unsigned long long>(v));
    return buf;
}

int
cmdList(const Args &args)
{
    int rc = 0;
    obs::StoreReader reader = loadOrDie(args.positional[0], rc);
    if (rc != 0)
        return rc;
    std::vector<const obs::LoadedRecord *> selected =
        reader.select(args.filter);
    if (args.json) {
        std::printf("[");
        for (std::size_t i = 0; i < selected.size(); ++i) {
            const obs::LoadedRecord *rec = selected[i];
            std::printf(
                "%s{\"seq\":%llu,\"kind\":\"%s\",\"bench\":\"%s\","
                "\"kernel\":\"%s\",\"outcome\":\"%s\","
                "\"config_hash\":\"%s\",\"point\":%ld,"
                "\"cycles\":%s}",
                i ? "," : "",
                static_cast<unsigned long long>(rec->seq),
                obs::jsonEscape(rec->kind).c_str(),
                obs::jsonEscape(rec->bench).c_str(),
                obs::jsonEscape(rec->kernel).c_str(),
                obs::jsonEscape(rec->outcome).c_str(),
                hex64(rec->configHash).c_str(), rec->point,
                obs::jsonNumber(rec->number("cycles")).c_str());
        }
        std::printf("]\n");
        return 0;
    }
    std::printf("%-5s %-11s %-22s %-12s %-9s %-6s %12s  %s\n", "seq",
                "kind", "bench", "kernel", "outcome", "point",
                "cycles", "config_hash");
    for (const obs::LoadedRecord *rec : selected) {
        std::printf("%-5llu %-11s %-22s %-12s %-9s %-6ld %12.0f  %s\n",
                    static_cast<unsigned long long>(rec->seq),
                    rec->kind.c_str(), rec->bench.c_str(),
                    rec->kernel.c_str(), rec->outcome.c_str(),
                    rec->point, rec->number("cycles"),
                    hex64(rec->configHash).c_str());
    }
    // Outcome histogram: one line splitting the deferred classes
    // (cached, skipped) from real failures at a glance.
    if (!selected.empty()) {
        std::map<std::string, std::size_t> outcomes;
        for (const obs::LoadedRecord *rec : selected)
            ++outcomes[rec->outcome];
        std::printf("outcomes:");
        for (const auto &[outcome, count] : outcomes)
            std::printf(" %s=%zu", outcome.c_str(), count);
        std::printf("\n");
    }
    std::printf("%zu record%s (%zu total in store)\n", selected.size(),
                selected.size() == 1 ? "" : "s",
                reader.records().size());
    return 0;
}

int
cmdAttempts(const Args &args)
{
    int rc = 0;
    obs::StoreReader reader = loadOrDie(args.positional[0], rc);
    if (rc != 0)
        return rc;
    obs::RecordFilter filter = args.filter;
    filter.kind = "attempt";
    std::vector<const obs::LoadedRecord *> selected =
        reader.select(filter);
    if (args.json) {
        std::printf("[");
        for (std::size_t i = 0; i < selected.size(); ++i) {
            const obs::LoadedRecord *rec = selected[i];
            std::printf(
                "%s{\"point\":%ld,\"attempt\":%s,"
                "\"outcome\":\"%s\",\"wall_seconds\":%s,"
                "\"error\":\"%s\"}",
                i ? "," : "", rec->point,
                obs::jsonNumber(rec->number("attempt")).c_str(),
                obs::jsonEscape(rec->outcome).c_str(),
                obs::jsonNumber(rec->number("wall_seconds")).c_str(),
                obs::jsonEscape(rec->record.stringOr("error", ""))
                    .c_str());
        }
        std::printf("]\n");
        return 0;
    }
    if (selected.empty()) {
        std::printf("no attempt records in store (sweeps write them "
                    "when --point-retries > 0)\n");
        return 0;
    }
    std::printf("%-6s %-8s %-9s %12s  %s\n", "point", "attempt",
                "outcome", "wall(s)", "error");
    std::map<long, unsigned> tries;
    std::map<long, bool> recovered;
    for (const obs::LoadedRecord *rec : selected) {
        std::printf("%-6ld %-8.0f %-9s %12.3f  %s\n", rec->point,
                    rec->number("attempt"), rec->outcome.c_str(),
                    rec->number("wall_seconds"),
                    rec->record.stringOr("error", "").c_str());
        unsigned attempt =
            static_cast<unsigned>(rec->number("attempt"));
        if (attempt > tries[rec->point])
            tries[rec->point] = attempt;
        if (rec->outcome == "ok")
            recovered[rec->point] = true;
    }
    std::size_t flaky = 0;
    std::size_t rescued = 0;
    for (const auto &[point, n] : tries) {
        if (n > 1) {
            ++flaky;
            if (recovered.count(point) != 0)
                ++rescued;
        }
    }
    std::printf("%zu attempt record%s over %zu point%s; %zu point%s "
                "needed more than one attempt (%zu recovered by "
                "retry)\n",
                selected.size(), selected.size() == 1 ? "" : "s",
                tries.size(), tries.size() == 1 ? "" : "s", flaky,
                flaky == 1 ? "" : "s", rescued);
    return 0;
}

int
cmdShow(const Args &args)
{
    int rc = 0;
    obs::StoreReader reader = loadOrDie(args.positional[0], rc);
    if (rc != 0)
        return rc;
    const obs::LoadedRecord *rec = nullptr;
    if (!args.hash.empty()) {
        std::uint64_t hash = obs::parseConfigHash(args.hash);
        if (hash == 0)
            return usage("--hash needs a non-zero hash");
        rec = reader.findByConfigHash(hash);
    } else if (args.seq >= 0) {
        for (const obs::LoadedRecord &candidate : reader.records()) {
            if (candidate.seq ==
                static_cast<std::uint64_t>(args.seq))
                rec = &candidate;
        }
    } else {
        return usage("show needs --hash or --seq");
    }
    if (rec == nullptr) {
        std::fprintf(stderr, "salam-query: no matching record\n");
        return 1;
    }
    std::printf(
        "{\"seq\":%llu,\"kind\":\"%s\",\"bench\":\"%s\","
        "\"kernel\":\"%s\",\"outcome\":\"%s\",\"config_hash\":\"%s\","
        "\"point\":%ld,\"timestamp_ns\":%llu,\"record\":%s}\n",
        static_cast<unsigned long long>(rec->seq),
        obs::jsonEscape(rec->kind).c_str(),
        obs::jsonEscape(rec->bench).c_str(),
        obs::jsonEscape(rec->kernel).c_str(),
        obs::jsonEscape(rec->outcome).c_str(),
        hex64(rec->configHash).c_str(), rec->point,
        static_cast<unsigned long long>(rec->timestampNs),
        rec->rawJson.empty() ? "{}" : rec->rawJson.c_str());
    return 0;
}

int
cmdDiff(const Args &args)
{
    int rc = 0;
    obs::StoreReader reader_a = loadOrDie(args.positional[0], rc);
    if (rc != 0)
        return rc;
    obs::StoreReader reader_b = loadOrDie(args.positional[1], rc);
    if (rc != 0)
        return rc;
    obs::DiffReport report = obs::diffStores(reader_a, reader_b,
                                             args.filter, args.field);
    if (args.json) {
        std::printf("{\"paired\":%zu,\"changed\":%zu,"
                    "\"only_in_a\":%zu,\"only_in_b\":%zu,"
                    "\"rows\":[",
                    report.pairedRows, report.changedRows,
                    report.onlyInA, report.onlyInB);
        bool first_row = true;
        for (const obs::DiffRow &row : report.rows) {
            std::printf("%s{\"kernel\":\"%s\",\"point\":%ld,"
                        "\"changed\":%s,\"fields\":{",
                        first_row ? "" : ",",
                        obs::jsonEscape(row.kernel).c_str(),
                        row.point, row.changed ? "true" : "false");
            first_row = false;
            for (std::size_t i = 0; i < row.fields.size(); ++i) {
                const obs::DiffField &field = row.fields[i];
                std::printf(
                    "%s\"%s\":{\"a\":%s,\"b\":%s,\"delta\":%s,"
                    "\"pct\":%s}",
                    i ? "," : "",
                    obs::jsonEscape(field.key).c_str(),
                    obs::jsonNumber(field.a).c_str(),
                    obs::jsonNumber(field.b).c_str(),
                    obs::jsonNumber(field.delta).c_str(),
                    obs::jsonNumber(field.pct).c_str());
            }
            std::printf("}}");
        }
        std::printf("]}\n");
        return 0;
    }
    for (const obs::DiffRow &row : report.rows) {
        if (row.a == nullptr) {
            std::printf("%-10s point %-4ld only in B\n",
                        row.kernel.c_str(), row.point);
            continue;
        }
        if (row.b == nullptr) {
            std::printf("%-10s point %-4ld only in A\n",
                        row.kernel.c_str(), row.point);
            continue;
        }
        std::printf("%-10s point %-4ld %s\n", row.kernel.c_str(),
                    row.point, row.changed ? "CHANGED" : "same");
        for (const obs::DiffField &field : row.fields) {
            if (field.delta == 0.0)
                continue;
            std::printf("    %-24s %14.6g -> %-14.6g (%+.2f%%)\n",
                        field.key.c_str(), field.a, field.b,
                        field.pct);
        }
    }
    std::printf("%zu paired, %zu changed, %zu only in A, %zu only "
                "in B\n",
                report.pairedRows, report.changedRows,
                report.onlyInA, report.onlyInB);
    return 0;
}

int
cmdRegress(const Args &args)
{
    if (args.baseline.empty())
        return usage("regress needs --baseline <file>");
    int rc = 0;
    obs::StoreReader reader = loadOrDie(args.positional[0], rc);
    if (rc != 0)
        return rc;
    std::FILE *fp = std::fopen(args.baseline.c_str(), "rb");
    if (fp == nullptr) {
        std::fprintf(stderr, "salam-query: cannot read baseline "
                             "'%s'\n",
                     args.baseline.c_str());
        return 1;
    }
    std::string baseline_json;
    char buf[4096];
    std::size_t got;
    while ((got = std::fread(buf, 1, sizeof(buf), fp)) > 0)
        baseline_json.append(buf, got);
    std::fclose(fp);

    obs::RegressReport report = obs::regressAgainstBaseline(
        reader, baseline_json, args.maxDropPct, args.filter.kernel);
    if (!report.error.empty()) {
        std::fprintf(stderr, "salam-query: %s\n",
                     report.error.c_str());
        return 1;
    }
    for (const obs::RegressRow &row : report.rows) {
        std::printf("%-14s baseline %.3e ticks/s, now %.3e ticks/s "
                    "(%.2fx) %s\n",
                    row.kernel.c_str(), row.baselineTicksPerSec,
                    row.currentTicksPerSec, row.ratio,
                    row.pass ? "ok" : "REGRESSED");
    }
    for (const std::string &kernel : report.missingKernels)
        std::printf("%-14s no store record to compare; skipped\n",
                    kernel.c_str());
    if (!report.pass) {
        std::printf("regression beyond %.0f%% budget\n",
                    report.maxDropPct);
        return 2;
    }
    std::printf("all %zu kernel(s) within the %.0f%% budget\n",
                report.rows.size(), report.maxDropPct);
    return 0;
}

int
cmdTop(const Args &args)
{
    int rc = 0;
    obs::StoreReader reader = loadOrDie(args.positional[0], rc);
    if (rc != 0)
        return rc;
    std::vector<obs::TopEntry> entries =
        obs::topHotspots(reader, args.limit);
    if (args.json) {
        std::printf("[");
        for (std::size_t i = 0; i < entries.size(); ++i) {
            std::printf("%s{\"label\":\"%s\",\"cycles\":%llu,"
                        "\"instances\":%llu,\"runs\":%zu}",
                        i ? "," : "",
                        obs::jsonEscape(entries[i].label).c_str(),
                        static_cast<unsigned long long>(
                            entries[i].cycles),
                        static_cast<unsigned long long>(
                            entries[i].instances),
                        entries[i].runs);
        }
        std::printf("]\n");
        return 0;
    }
    if (entries.empty()) {
        std::printf("no profile records in store (run with "
                    "--profile-out and --store-out)\n");
        return 0;
    }
    std::printf("%12s %10s %5s  %s\n", "cycles", "instances", "runs",
                "instruction");
    for (const obs::TopEntry &entry : entries) {
        std::printf("%12llu %10llu %5zu  %s\n",
                    static_cast<unsigned long long>(entry.cycles),
                    static_cast<unsigned long long>(entry.instances),
                    entry.runs, entry.label.c_str());
    }
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2)
        return usage();
    std::string cmd = argv[1];
    Args args;
    std::string error;
    if (!parseArgs(argc, argv, args, error))
        return usage(error.c_str());

    std::size_t want_stores = cmd == "diff" ? 2 : 1;
    if (args.positional.size() != want_stores)
        return usage(cmd == "diff"
                         ? "diff needs exactly two stores"
                         : "expected exactly one store path");

    if (cmd == "list")
        return cmdList(args);
    if (cmd == "show")
        return cmdShow(args);
    if (cmd == "diff")
        return cmdDiff(args);
    if (cmd == "regress")
        return cmdRegress(args);
    if (cmd == "top")
        return cmdTop(args);
    if (cmd == "attempts")
        return cmdAttempts(args);
    return usage(("unknown command '" + cmd + "'").c_str());
}

/**
 * @file
 * Status and error reporting, following gem5's logging conventions.
 *
 * - inform(): normal status messages.
 * - warn():   suspicious-but-survivable conditions.
 * - fatal():  user error (bad configuration); exits cleanly.
 * - panic():  simulator bug; aborts.
 *
 * inform/warn route through the obs debug-flag registry (flags
 * "Inform" and "Warn"): they are suppressed unless their flag is
 * enabled, and tests can capture or silence them per flag via
 * obs::DebugFlagRegistry::setSink instead of a process-wide global.
 * fatal/panic always emit.
 */

#ifndef SALAM_SIM_LOGGING_HH
#define SALAM_SIM_LOGGING_HH

#include <cstdio>
#include <cstdlib>
#include <functional>
#include <string>

#include "obs/debug_flags.hh"

namespace salam
{

/**
 * Graceful-degradation hooks: callbacks run by fatal() (and the
 * watchdog, which terminates via fatal()) before the process exits,
 * so stats, traces, and run reports survive a failed run. Hooks run
 * newest-first; a hook that itself fatal()s does not recurse. The
 * @p outcome argument is the classification set via setFatalOutcome
 * ("fault" unless overridden, "deadlock" from the watchdog paths).
 */
using TerminationHook =
    std::function<void(const char *outcome, const std::string &message)>;

/** Register a hook; returns an id for removeTerminationHook(). */
std::size_t addTerminationHook(TerminationHook hook);

/** Remove a previously registered hook (no-op on unknown id). */
void removeTerminationHook(std::size_t id);

/**
 * Classify the next fatal() for the termination hooks and the run
 * report's "outcome" field. Sticky until fatal() fires. Typical
 * values: "deadlock" (watchdog / drained queue with unfinished
 * host), "fault" (the default: wrong results, bad config).
 */
void setFatalOutcome(const char *outcome);

/** The classification the next fatal() will report. */
const char *fatalOutcome();

/** RAII guard: registers a hook, removes it on scope exit. */
class ScopedTerminationHook
{
  public:
    explicit ScopedTerminationHook(TerminationHook hook)
        : id(addTerminationHook(std::move(hook)))
    {}

    ~ScopedTerminationHook() { removeTerminationHook(id); }

    ScopedTerminationHook(const ScopedTerminationHook &) = delete;
    ScopedTerminationHook &
    operator=(const ScopedTerminationHook &) = delete;

  private:
    std::size_t id;
};

/**
 * Back-compat verbosity switch: setVerbose(true) enables the Inform
 * and Warn debug flags (the old process-wide bool).
 */
struct LogControl
{
    static void
    setVerbose(bool on)
    {
        if (on) {
            obs::flag::Inform.enable();
            obs::flag::Warn.enable();
        } else {
            obs::flag::Inform.disable();
            obs::flag::Warn.disable();
        }
    }

    static bool
    verbose()
    {
        return obs::flag::Inform.enabled() ||
            obs::flag::Warn.enabled();
    }
};

namespace detail
{

void logMessage(const char *prefix, const std::string &msg,
                bool always);

std::string formatString(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Log @p msg, run the termination hooks, and exit(1). */
[[noreturn]] void fatalExit(const std::string &msg);

} // namespace detail

/** Print an informational message (needs the Inform flag). */
template <typename... Args>
void
inform(const char *fmt, Args... args)
{
    if (!obs::flag::Inform.enabled())
        return;
    detail::logMessage("info: ",
                       detail::formatString(fmt, args...), false);
}

/** Print a warning message (needs the Warn flag). */
template <typename... Args>
void
warn(const char *fmt, Args... args)
{
    if (!obs::flag::Warn.enabled())
        return;
    detail::logMessage("warn: ",
                       detail::formatString(fmt, args...), false);
}

/**
 * Report an unrecoverable user error (bad config, invalid arguments)
 * and exit with status 1.
 */
template <typename... Args>
[[noreturn]] void
fatal(const char *fmt, Args... args)
{
    detail::fatalExit(detail::formatString(fmt, args...));
}

/**
 * Report a condition that indicates a simulator bug and abort so a
 * debugger or core dump can capture the state.
 */
template <typename... Args>
[[noreturn]] void
panic(const char *fmt, Args... args)
{
    detail::logMessage("panic: ",
                       detail::formatString(fmt, args...), true);
    std::abort();
}

/** Assert a simulator invariant; failure is a panic. */
#define SALAM_ASSERT(cond)                                             \
    do {                                                               \
        if (!(cond)) {                                                 \
            ::salam::panic("assertion '%s' failed at %s:%d",           \
                           #cond, __FILE__, __LINE__);                 \
        }                                                              \
    } while (0)

} // namespace salam

#endif // SALAM_SIM_LOGGING_HH

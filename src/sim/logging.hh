/**
 * @file
 * Status and error reporting, following gem5's logging conventions.
 *
 * - inform(): normal status messages.
 * - warn():   suspicious-but-survivable conditions.
 * - fatal():  user error (bad configuration); exits cleanly.
 * - panic():  simulator bug; aborts.
 *
 * inform/warn route through the obs debug-flag registry (flags
 * "Inform" and "Warn"): they are suppressed unless their flag is
 * enabled, and tests can capture or silence them per flag via
 * obs::DebugFlagRegistry::setSink instead of a process-wide global.
 * fatal/panic always emit.
 */

#ifndef SALAM_SIM_LOGGING_HH
#define SALAM_SIM_LOGGING_HH

#include <cstdio>
#include <cstdlib>
#include <string>

#include "obs/debug_flags.hh"

namespace salam
{

/**
 * Back-compat verbosity switch: setVerbose(true) enables the Inform
 * and Warn debug flags (the old process-wide bool).
 */
struct LogControl
{
    static void
    setVerbose(bool on)
    {
        if (on) {
            obs::flag::Inform.enable();
            obs::flag::Warn.enable();
        } else {
            obs::flag::Inform.disable();
            obs::flag::Warn.disable();
        }
    }

    static bool
    verbose()
    {
        return obs::flag::Inform.enabled() ||
            obs::flag::Warn.enabled();
    }
};

namespace detail
{

void logMessage(const char *prefix, const std::string &msg,
                bool always);

std::string formatString(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

} // namespace detail

/** Print an informational message (needs the Inform flag). */
template <typename... Args>
void
inform(const char *fmt, Args... args)
{
    if (!obs::flag::Inform.enabled())
        return;
    detail::logMessage("info: ",
                       detail::formatString(fmt, args...), false);
}

/** Print a warning message (needs the Warn flag). */
template <typename... Args>
void
warn(const char *fmt, Args... args)
{
    if (!obs::flag::Warn.enabled())
        return;
    detail::logMessage("warn: ",
                       detail::formatString(fmt, args...), false);
}

/**
 * Report an unrecoverable user error (bad config, invalid arguments)
 * and exit with status 1.
 */
template <typename... Args>
[[noreturn]] void
fatal(const char *fmt, Args... args)
{
    detail::logMessage("fatal: ",
                       detail::formatString(fmt, args...), true);
    std::exit(1);
}

/**
 * Report a condition that indicates a simulator bug and abort so a
 * debugger or core dump can capture the state.
 */
template <typename... Args>
[[noreturn]] void
panic(const char *fmt, Args... args)
{
    detail::logMessage("panic: ",
                       detail::formatString(fmt, args...), true);
    std::abort();
}

/** Assert a simulator invariant; failure is a panic. */
#define SALAM_ASSERT(cond)                                             \
    do {                                                               \
        if (!(cond)) {                                                 \
            ::salam::panic("assertion '%s' failed at %s:%d",           \
                           #cond, __FILE__, __LINE__);                 \
        }                                                              \
    } while (0)

} // namespace salam

#endif // SALAM_SIM_LOGGING_HH

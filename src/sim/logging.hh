/**
 * @file
 * Status and error reporting, following gem5's logging conventions.
 *
 * - inform(): normal status messages.
 * - warn():   suspicious-but-survivable conditions.
 * - fatal():  user error (bad configuration); exits cleanly.
 * - panic():  simulator bug; aborts.
 *
 * inform/warn route through the obs debug-flag registry (flags
 * "Inform" and "Warn"): they are suppressed unless their flag is
 * enabled, and tests can capture or silence them per flag via
 * obs::DebugFlagRegistry::setSink instead of a process-wide global.
 * fatal/panic always emit.
 */

#ifndef SALAM_SIM_LOGGING_HH
#define SALAM_SIM_LOGGING_HH

#include <cstdio>
#include <cstdlib>
#include <functional>
#include <string>

#include "obs/debug_flags.hh"
#include "sim_context.hh"

namespace salam
{

// The hook type (TerminationHook) and the FatalError exception live
// in sim_context.hh; the free functions below operate on the calling
// thread's current SimContext, so every simulation (sweep point) has
// its own hook list and outcome classification.

/** Register a hook; returns an id for removeTerminationHook(). */
inline std::size_t
addTerminationHook(TerminationHook hook)
{
    return SimContext::current().addTerminationHook(std::move(hook));
}

/** Remove a previously registered hook (no-op on unknown id). */
inline void
removeTerminationHook(std::size_t id)
{
    SimContext::current().removeTerminationHook(id);
}

/**
 * Classify the next fatal() for the termination hooks and the run
 * report's "outcome" field. Sticky until fatal() fires. Typical
 * values: "deadlock" (watchdog / drained queue with unfinished
 * host), "fault" (the default: wrong results, bad config).
 */
inline void
setFatalOutcome(const char *outcome)
{
    SimContext::current().setFatalOutcome(outcome);
}

/** The classification the next fatal() will report. */
inline const char *
fatalOutcome()
{
    return SimContext::current().fatalOutcome();
}

/** RAII guard: registers a hook, removes it on scope exit. */
class ScopedTerminationHook
{
  public:
    explicit ScopedTerminationHook(TerminationHook hook)
        : id(addTerminationHook(std::move(hook)))
    {}

    ~ScopedTerminationHook() { removeTerminationHook(id); }

    ScopedTerminationHook(const ScopedTerminationHook &) = delete;
    ScopedTerminationHook &
    operator=(const ScopedTerminationHook &) = delete;

  private:
    std::size_t id;
};

/**
 * Back-compat verbosity switch: setVerbose(true) enables the Inform
 * and Warn debug flags (the old process-wide bool).
 */
struct LogControl
{
    static void
    setVerbose(bool on)
    {
        if (on) {
            obs::flag::Inform.enable();
            obs::flag::Warn.enable();
        } else {
            obs::flag::Inform.disable();
            obs::flag::Warn.disable();
        }
    }

    static bool
    verbose()
    {
        return obs::flag::Inform.enabled() ||
            obs::flag::Warn.enabled();
    }
};

namespace detail
{

void logMessage(const char *prefix, const std::string &msg,
                bool always);

std::string formatString(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/**
 * Log @p msg, then hand off to the current SimContext: run its
 * termination hooks and exit(1) or throw FatalError per its fatal
 * mode.
 */
[[noreturn]] void fatalExit(const std::string &msg);

} // namespace detail

/** Print an informational message (needs the Inform flag). */
template <typename... Args>
void
inform(const char *fmt, Args... args)
{
    if (!obs::flag::Inform.enabled())
        return;
    detail::logMessage("info: ",
                       detail::formatString(fmt, args...), false);
}

/** Print a warning message (needs the Warn flag). */
template <typename... Args>
void
warn(const char *fmt, Args... args)
{
    if (!obs::flag::Warn.enabled())
        return;
    detail::logMessage("warn: ",
                       detail::formatString(fmt, args...), false);
}

/**
 * Report an unrecoverable user error (bad config, invalid arguments)
 * and exit with status 1.
 */
template <typename... Args>
[[noreturn]] void
fatal(const char *fmt, Args... args)
{
    detail::fatalExit(detail::formatString(fmt, args...));
}

/**
 * Report a condition that indicates a simulator bug and abort so a
 * debugger or core dump can capture the state.
 */
template <typename... Args>
[[noreturn]] void
panic(const char *fmt, Args... args)
{
    detail::logMessage("panic: ",
                       detail::formatString(fmt, args...), true);
    std::abort();
}

/** Assert a simulator invariant; failure is a panic. */
#define SALAM_ASSERT(cond)                                             \
    do {                                                               \
        if (!(cond)) {                                                 \
            ::salam::panic("assertion '%s' failed at %s:%d",           \
                           #cond, __FILE__, __LINE__);                 \
        }                                                              \
    } while (0)

} // namespace salam

#endif // SALAM_SIM_LOGGING_HH

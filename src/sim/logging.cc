#include "logging.hh"

#include <cstdarg>
#include <utility>
#include <vector>

namespace salam
{

namespace detail
{

void
fatalExit(const std::string &msg)
{
    logMessage("fatal: ", msg, true);
    SimContext::current().failFatal(msg);
}

void
logMessage(const char *prefix, const std::string &msg, bool always)
{
    // fatal/panic bypass the sink: they must reach the real stderr
    // even when a test has redirected trace output.
    if (always) {
        std::fputs(prefix, stderr);
        std::fputs(msg.c_str(), stderr);
        std::fputc('\n', stderr);
        return;
    }
    obs::DebugFlagRegistry::instance().emit(prefix + msg);
}

std::string
formatString(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    va_list args_copy;
    va_copy(args_copy, args);
    int len = std::vsnprintf(nullptr, 0, fmt, args);
    va_end(args);
    if (len < 0) {
        va_end(args_copy);
        return fmt;
    }
    std::vector<char> buf(static_cast<std::size_t>(len) + 1);
    std::vsnprintf(buf.data(), buf.size(), fmt, args_copy);
    va_end(args_copy);
    return std::string(buf.data(), static_cast<std::size_t>(len));
}

} // namespace detail

} // namespace salam

#include "logging.hh"

#include <cstdarg>
#include <utility>
#include <vector>

namespace salam
{

namespace
{

struct HookEntry
{
    std::size_t id;
    TerminationHook hook;
};

std::vector<HookEntry> &
hooks()
{
    static std::vector<HookEntry> entries;
    return entries;
}

std::size_t nextHookId = 1;

const char *currentOutcome = "fault";

bool inFatal = false;

} // namespace

std::size_t
addTerminationHook(TerminationHook hook)
{
    std::size_t id = nextHookId++;
    hooks().push_back({id, std::move(hook)});
    return id;
}

void
removeTerminationHook(std::size_t id)
{
    auto &entries = hooks();
    for (auto it = entries.begin(); it != entries.end(); ++it) {
        if (it->id == id) {
            entries.erase(it);
            return;
        }
    }
}

void
setFatalOutcome(const char *outcome)
{
    currentOutcome = outcome;
}

const char *
fatalOutcome()
{
    return currentOutcome;
}

namespace detail
{

void
fatalExit(const std::string &msg)
{
    logMessage("fatal: ", msg, true);
    // Run hooks newest-first so inner scopes (a bench's artifact
    // flusher) fire before anything outer. A hook that fatal()s
    // again must not recurse into the hook list.
    if (!inFatal) {
        inFatal = true;
        auto entries = hooks();
        for (auto it = entries.rbegin(); it != entries.rend(); ++it)
            it->hook(currentOutcome, msg);
    }
    std::exit(1);
}

void
logMessage(const char *prefix, const std::string &msg, bool always)
{
    // fatal/panic bypass the sink: they must reach the real stderr
    // even when a test has redirected trace output.
    if (always) {
        std::fputs(prefix, stderr);
        std::fputs(msg.c_str(), stderr);
        std::fputc('\n', stderr);
        return;
    }
    obs::DebugFlagRegistry::instance().emit(prefix + msg);
}

std::string
formatString(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    va_list args_copy;
    va_copy(args_copy, args);
    int len = std::vsnprintf(nullptr, 0, fmt, args);
    va_end(args);
    if (len < 0) {
        va_end(args_copy);
        return fmt;
    }
    std::vector<char> buf(static_cast<std::size_t>(len) + 1);
    std::vsnprintf(buf.data(), buf.size(), fmt, args_copy);
    va_end(args_copy);
    return std::string(buf.data(), static_cast<std::size_t>(len));
}

} // namespace detail

} // namespace salam

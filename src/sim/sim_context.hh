/**
 * @file
 * SimContext: per-simulation ownership of what used to be process
 * globals, so N independent Simulation instances can run concurrently
 * in one process (thread-parallel design-space sweeps).
 *
 * A SimContext owns:
 *  - the debug-flag enable state (a 64-bit mask indexed by each
 *    DebugFlag's dense id — the flag *names* stay in the process-wide
 *    DebugFlagRegistry, which is immutable after static init);
 *  - the trace/log sink that SALAM_TRACE lines and inform()/warn()
 *    messages are emitted through;
 *  - the termination hooks, fatal-outcome classification, and the
 *    fatal *mode* (exit the process, or throw FatalError so a sweep
 *    worker can record the failure and move to the next point).
 *
 * Binding is thread-local: SimContext::current() returns the context
 * bound to the calling thread, falling back to a shared process
 * default so existing single-simulation code keeps working unchanged.
 * ScopedSimContext binds a context for a scope (a sweep worker binds
 * a fresh context around each point). Contexts are not internally
 * synchronized — one context must only ever be used by one thread at
 * a time, which the scoped binding enforces by construction.
 */

#ifndef SALAM_SIM_SIM_CONTEXT_HH
#define SALAM_SIM_SIM_CONTEXT_HH

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

namespace salam
{

namespace obs
{
class HostTelemetry;
class ReportBuffer;
} // namespace obs

/**
 * Graceful-degradation hooks: callbacks run by fatal() (and the
 * watchdog, which terminates via fatal()) before the run terminates,
 * so stats, traces, and run reports survive a failed run. Hooks run
 * newest-first; a hook that itself fatal()s does not recurse. The
 * @p outcome argument is the classification set via setFatalOutcome
 * ("fault" unless overridden, "deadlock" from the watchdog paths).
 */
using TerminationHook =
    std::function<void(const char *outcome, const std::string &message)>;

/**
 * Thrown by fatal() when the bound SimContext uses FatalMode::Throw.
 * Carries the outcome classification ("fault", "deadlock", ...) the
 * run report would have recorded.
 */
class FatalError : public std::runtime_error
{
  public:
    FatalError(std::string outcome, const std::string &message)
        : std::runtime_error(message), _outcome(std::move(outcome))
    {}

    const std::string &outcome() const { return _outcome; }

  private:
    std::string _outcome;
};

/** Per-simulation home for previously process-global mutable state. */
class SimContext
{
  public:
    /** What fatal() does after running the termination hooks. */
    enum class FatalMode
    {
        Exit,  ///< std::exit(1) — the historical behaviour
        Throw, ///< throw FatalError — sweep workers survive a point
    };

    SimContext() = default;

    SimContext(const SimContext &) = delete;
    SimContext &operator=(const SimContext &) = delete;

    /**
     * The shared fallback context used by any thread with no
     * explicit binding. Single-simulation programs never need to
     * know contexts exist.
     */
    static SimContext &processDefault();

    /** The context bound to the calling thread (or the default). */
    static SimContext &
    current()
    {
        return tlsContext != nullptr ? *tlsContext : processDefault();
    }

    // --- debug-flag enable state (indexed by DebugFlag dense id) ---

    bool
    flagEnabled(unsigned id) const
    {
        return (_flagMask >> id) & 1u;
    }

    void
    setFlagEnabled(unsigned id, bool on)
    {
        std::uint64_t bit = std::uint64_t{1} << id;
        if (on)
            _flagMask |= bit;
        else
            _flagMask &= ~bit;
    }

    /** Snapshot/restore the whole mask (sweep workers inherit it). */
    std::uint64_t flagMask() const { return _flagMask; }

    void setFlagMask(std::uint64_t mask) { _flagMask = mask; }

    // --- host-performance telemetry ---

    /**
     * The host-telemetry accumulator for runs under this context, or
     * null (the default: zero-overhead). Non-owning — the attacher
     * (bench main(), a sweep worker) keeps the object alive and
     * detaches before it dies. Only the thread the context is bound
     * to may mutate the telemetry through this pointer.
     */
    obs::HostTelemetry *hostTelemetry() const { return _telemetry; }

    void setHostTelemetry(obs::HostTelemetry *telemetry)
    { _telemetry = telemetry; }

    // --- run-report output routing ---

    /**
     * Where RunReport::appendToFile() sends its lines: null appends
     * straight to the file (single-run behaviour); non-null buffers
     * into a per-worker ReportBuffer that a sweep flushes once at
     * the end, so workers never take the file-append lock per point.
     * Non-owning; the attacher keeps the buffer alive.
     */
    obs::ReportBuffer *reportSink() const { return _reportSink; }

    void setReportSink(obs::ReportBuffer *sink)
    { _reportSink = sink; }

    /**
     * Index of the sweep point running under this context, or -1
     * outside a sweep. SweepRunner stamps it so records a point
     * appends to a ResultStore carry a stable point identity —
     * `salam-query diff` pairs two sweeps' records by it regardless
     * of which worker finished first.
     */
    long sweepPointIndex() const { return _sweepPoint; }

    void setSweepPointIndex(long index) { _sweepPoint = index; }

    // --- host-side execution limits (per-point deadlines, cancel) ---

    /**
     * Absolute host deadline for the simulation running under this
     * context, as an obs::hostNowNs() value; 0 means no deadline.
     * The event loop checks it periodically and fatal()s with
     * outcome "timeout" once it passes — the backstop that catches a
     * hung point even when the simulated clock is frozen and no
     * sentinel event can ever fire. Plain field: only the bound
     * thread reads or writes it.
     */
    std::uint64_t pointDeadlineNs() const { return _pointDeadlineNs; }

    void setPointDeadlineNs(std::uint64_t deadline_ns)
    { _pointDeadlineNs = deadline_ns; }

    /**
     * External cancellation flag, or null. A signal handler (or a
     * shutdown escalation) sets the pointed-to atomic from another
     * thread; the event loop polls it and fatal()s with outcome
     * "skipped" so the in-flight point unwinds promptly and can be
     * re-run by a later resume. Non-owning.
     */
    void setCancelFlag(const std::atomic<bool> *flag)
    { _cancelFlag = flag; }

    bool
    cancelRequested() const
    {
        return _cancelFlag != nullptr &&
               _cancelFlag->load(std::memory_order_relaxed);
    }

    // --- trace/log sink ---

    using LogSink = std::function<void(const std::string &line)>;

    /** Replace the sink; a null sink restores the default (stderr). */
    void setLogSink(LogSink sink) { _sink = std::move(sink); }

    bool hasLogSink() const { return static_cast<bool>(_sink); }

    /** Emit one already-formatted line through this context's sink. */
    void emitLog(const std::string &line) const;

    // --- termination hooks / fatal handling ---

    /** Register a hook; returns an id for removeTerminationHook(). */
    std::size_t addTerminationHook(TerminationHook hook);

    /** Remove a previously registered hook (no-op on unknown id). */
    void removeTerminationHook(std::size_t id);

    void setFatalOutcome(const char *outcome)
    { _outcome = outcome; }

    const char *fatalOutcome() const { return _outcome; }

    void setFatalMode(FatalMode mode) { _fatalMode = mode; }

    FatalMode fatalMode() const { return _fatalMode; }

    /**
     * Terminate the current run: run this context's hooks
     * newest-first, then exit(1) or throw FatalError per the fatal
     * mode. Called by fatal() with the message already logged.
     */
    [[noreturn]] void failFatal(const std::string &message);

  private:
    friend class ScopedSimContext;

    /**
     * The thread's bound context; null means "use processDefault()".
     * constinit: no static-init-order hazard with the DebugFlag
     * constructors that run at static init and call current().
     */
    static constinit thread_local SimContext *tlsContext;

    struct HookEntry
    {
        std::size_t id;
        TerminationHook hook;
    };

    std::uint64_t _flagMask = 0;
    obs::HostTelemetry *_telemetry = nullptr;
    obs::ReportBuffer *_reportSink = nullptr;
    long _sweepPoint = -1;
    std::uint64_t _pointDeadlineNs = 0;
    const std::atomic<bool> *_cancelFlag = nullptr;
    LogSink _sink;
    std::vector<HookEntry> _hooks;
    std::size_t _nextHookId = 1;
    const char *_outcome = "fault";
    FatalMode _fatalMode = FatalMode::Exit;
    bool _inFatal = false;
};

/** RAII thread-local binding of a SimContext. */
class ScopedSimContext
{
  public:
    explicit ScopedSimContext(SimContext &ctx)
        : prev(SimContext::tlsContext)
    {
        SimContext::tlsContext = &ctx;
    }

    ~ScopedSimContext() { SimContext::tlsContext = prev; }

    ScopedSimContext(const ScopedSimContext &) = delete;
    ScopedSimContext &operator=(const ScopedSimContext &) = delete;

  private:
    SimContext *prev;
};

} // namespace salam

#endif // SALAM_SIM_SIM_CONTEXT_HH

/**
 * @file
 * The event-driven simulation core: Event and EventQueue.
 *
 * The EventQueue is a priority queue of Events ordered by (tick,
 * priority, insertion order). The simulation advances by servicing the
 * head event, which may schedule further events. Insertion order breaks
 * ties so that simulation is fully deterministic.
 */

#ifndef SALAM_SIM_EVENT_QUEUE_HH
#define SALAM_SIM_EVENT_QUEUE_HH

#include <cstdint>
#include <functional>
#include <queue>
#include <string>
#include <vector>

#include "logging.hh"
#include "obs/host_telemetry.hh"
#include "types.hh"

namespace salam
{

class EventQueue;

/**
 * An event that can be scheduled on an EventQueue. Subclasses override
 * process(). EventFunctionWrapper adapts a lambda or member function.
 *
 * An Event object may only be on the queue once at a time; it can be
 * rescheduled after it fires. The scheduling object owns the Event.
 */
class Event
{
  public:
    /** Lower priority values are serviced first within a tick. */
    enum Priority : int
    {
        memoryResponsePri = -10,
        defaultPri = 0,
        cpuTickPri = 10,
    };

    explicit Event(std::string name, int priority = defaultPri,
                   obs::HostPhase host_phase = obs::HostPhase::EventLoop)
        : _name(std::move(name)), _priority(priority),
          _hostPhase(host_phase)
    {}

    virtual ~Event();

    /** The action performed when the event fires. */
    virtual void process() = 0;

    const std::string &name() const { return _name; }

    int priority() const { return _priority; }

    /**
     * Host-telemetry class this event's process() time is attributed
     * to (engine scheduling, memory modeling, ...). Fixed at
     * construction; EventLoop for unclassified events.
     */
    obs::HostPhase hostPhase() const { return _hostPhase; }

    bool scheduled() const { return _scheduled; }

    /** Tick this event is scheduled for; valid only when scheduled. */
    Tick when() const { return _when; }

  private:
    friend class EventQueue;

    std::string _name;
    int _priority;
    obs::HostPhase _hostPhase = obs::HostPhase::EventLoop;
    bool _scheduled = false;
    Tick _when = 0;
    std::uint64_t _sequence = 0;
};

/** Adapts a std::function to the Event interface. */
class EventFunctionWrapper : public Event
{
  public:
    EventFunctionWrapper(std::function<void()> callback, std::string name,
                         int priority = defaultPri,
                         obs::HostPhase host_phase = obs::HostPhase::EventLoop)
        : Event(std::move(name), priority, host_phase),
          callback(std::move(callback))
    {}

    void process() override { callback(); }

  private:
    std::function<void()> callback;
};

/**
 * Deterministic event queue. Also supports one-shot lambdas scheduled
 * directly with schedule(tick, fn), which the queue owns.
 */
class EventQueue
{
  public:
    EventQueue() = default;

    EventQueue(const EventQueue &) = delete;
    EventQueue &operator=(const EventQueue &) = delete;

    ~EventQueue();

    /** Current simulated time. */
    Tick curTick() const { return _curTick; }

    /** Schedule an externally-owned event at an absolute tick. */
    void schedule(Event *event, Tick when);

    /** Remove a scheduled event from the queue without firing it. */
    void deschedule(Event *event);

    /** Deschedule (if needed) and schedule at a new tick. */
    void reschedule(Event *event, Tick when);

    /** Schedule a one-shot callback owned by the queue. */
    void schedule(Tick when, std::function<void()> callback,
                  std::string name = "lambda",
                  obs::HostPhase host_phase = obs::HostPhase::EventLoop);

    /** True when no events remain. */
    bool empty() const { return queue.empty(); }

    std::size_t size() const { return queue.size(); }

    /**
     * Service events until the queue is empty or the time limit is
     * exceeded.
     *
     * @param limit Stop before servicing events beyond this tick.
     * @return The tick of the last serviced event.
     */
    Tick run(Tick limit = maxTick);

    /** Service exactly one event. @return false if the queue is empty. */
    bool step();

    /**
     * Pop every pending entry without firing it, clearing the
     * events' scheduled flags and releasing queue-owned lambdas.
     * ~Simulation calls this before destroying SimObjects so that a
     * simulation abandoned mid-run (a FatalError unwinding out of
     * run() on a timeout or cancellation) does not destroy objects
     * whose member events are still scheduled.
     */
    void drainAll();

    /** Number of events serviced since construction. */
    std::uint64_t numServiced() const { return serviced; }

    /** High-water mark of the event heap (scheduling pressure). */
    std::size_t maxHeapDepth() const { return maxDepth; }

  private:
    struct Entry
    {
        Tick when;
        int priority;
        std::uint64_t sequence;
        Event *event;

        bool
        operator>(const Entry &o) const
        {
            if (when != o.when)
                return when > o.when;
            if (priority != o.priority)
                return priority > o.priority;
            return sequence > o.sequence;
        }
    };

    std::priority_queue<Entry, std::vector<Entry>, std::greater<>> queue;
    Tick _curTick = 0;
    std::uint64_t nextSequence = 0;
    std::uint64_t serviced = 0;
    std::uint64_t liveLambdas = 0;
    std::size_t maxDepth = 0;
};

} // namespace salam

#endif // SALAM_SIM_EVENT_QUEUE_HH

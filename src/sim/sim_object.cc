#include "sim_object.hh"

#include "simulation.hh"

namespace salam
{

SimObject::SimObject(Simulation &sim, std::string name)
    : sim(sim), _name(std::move(name))
{
    sim.registerObject(this);
}

EventQueue &
SimObject::eventQueue() const
{
    return sim.eventQueue();
}

void
SimObject::noteProgress()
{
    _lastProgress = curTick();
    sim.noteProgress();
}

ClockedObject::ClockedObject(Simulation &sim, std::string name,
                             Tick clock_period)
    : SimObject(sim, std::move(name)), _clockPeriod(clock_period)
{
    if (clock_period == 0)
        fatal("%s: clock period must be non-zero", this->name().c_str());
}

} // namespace salam

#include "statistics.hh"

#include <iomanip>

#include "logging.hh"

namespace salam
{

Stat &
StatRegistry::add(const std::string &name, const std::string &desc)
{
    auto [it, inserted] = stats.try_emplace(name, name, desc);
    if (!inserted)
        panic("duplicate statistic '%s'", name.c_str());
    return it->second;
}

const Stat *
StatRegistry::find(const std::string &name) const
{
    auto it = stats.find(name);
    return it == stats.end() ? nullptr : &it->second;
}

double
StatRegistry::sumByPrefix(const std::string &prefix) const
{
    double sum = 0.0;
    for (auto it = stats.lower_bound(prefix); it != stats.end(); ++it) {
        if (it->first.compare(0, prefix.size(), prefix) != 0)
            break;
        sum += it->second.value();
    }
    return sum;
}

void
StatRegistry::dump(std::ostream &os) const
{
    for (const auto &[name, stat] : stats) {
        os << std::left << std::setw(48) << name
           << std::right << std::setw(16) << stat.value()
           << "  # " << stat.description() << '\n';
    }
}

void
StatRegistry::resetAll()
{
    for (auto &[name, stat] : stats)
        stat.reset();
}

} // namespace salam

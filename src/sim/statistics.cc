#include "statistics.hh"

#include <iomanip>
#include <sstream>

#include "logging.hh"
#include "obs/json.hh"

namespace salam
{

using obs::jsonEscape;
using obs::jsonNumber;

// ---- StatBase ------------------------------------------------------

void
StatBase::print(std::ostream &os) const
{
    os << std::left << std::setw(48) << name()
       << std::right << std::setw(16) << value()
       << "  # " << description() << '\n';
}

void
StatBase::printJson(std::ostream &os) const
{
    os << "{\"kind\":\"" << kind() << "\",\"desc\":\""
       << jsonEscape(description()) << "\",\"value\":"
       << jsonNumber(value()) << "}";
}

// ---- Histogram -----------------------------------------------------

Histogram::Histogram(std::string name, std::string desc, double min,
                     double max, unsigned buckets)
    : StatBase(std::move(name), std::move(desc)), lo(min)
{
    if (buckets == 0)
        panic("histogram '%s' needs at least one bucket",
              this->name().c_str());
    if (max < min)
        panic("histogram '%s' has max < min", this->name().c_str());
    // A degenerate [v, v) range still gets one bucket; every
    // in-range sample must equal v and lands in it.
    width = (max - min) / buckets;
    if (width <= 0.0)
        width = 1.0;
    counts.assign(buckets, 0);
}

void
Histogram::sample(double v, std::uint64_t count)
{
    if (count == 0)
        return;
    if (samples == 0) {
        seenMin = seenMax = v;
    } else {
        if (v < seenMin)
            seenMin = v;
        if (v > seenMax)
            seenMax = v;
    }
    samples += count;
    total += v * static_cast<double>(count);

    if (v < lo) {
        below += count;
        return;
    }
    auto idx = static_cast<std::size_t>((v - lo) / width);
    if (idx >= counts.size()) {
        above += count;
        return;
    }
    counts[idx] += count;
}

void
Histogram::reset()
{
    for (auto &c : counts)
        c = 0;
    below = above = samples = 0;
    total = seenMin = seenMax = 0.0;
}

void
Histogram::print(std::ostream &os) const
{
    os << std::left << std::setw(48) << name()
       << std::right << std::setw(16) << mean()
       << "  # " << description() << " (mean of " << samples
       << " samples)\n";
    if (below > 0) {
        os << "  " << std::left << std::setw(46) << "  (underflow)"
           << std::right << std::setw(16) << below << '\n';
    }
    for (unsigned i = 0; i < numBuckets(); ++i) {
        if (counts[i] == 0)
            continue;
        std::ostringstream label;
        label << "  [" << bucketLow(i) << ", " << bucketHigh(i)
              << ")";
        os << "  " << std::left << std::setw(46) << label.str()
           << std::right << std::setw(16) << counts[i] << '\n';
    }
    if (above > 0) {
        os << "  " << std::left << std::setw(46) << "  (overflow)"
           << std::right << std::setw(16) << above << '\n';
    }
}

void
Histogram::printJson(std::ostream &os) const
{
    os << "{\"kind\":\"histogram\",\"desc\":\""
       << jsonEscape(description()) << "\",\"value\":"
       << jsonNumber(mean()) << ",\"count\":" << samples
       << ",\"sum\":" << jsonNumber(total)
       << ",\"min\":" << jsonNumber(minValue())
       << ",\"max\":" << jsonNumber(maxValue())
       << ",\"underflow\":" << below << ",\"overflow\":" << above
       << ",\"buckets\":[";
    for (unsigned i = 0; i < numBuckets(); ++i) {
        if (i > 0)
            os << ",";
        os << "{\"low\":" << jsonNumber(bucketLow(i))
           << ",\"high\":" << jsonNumber(bucketHigh(i))
           << ",\"count\":" << counts[i] << "}";
    }
    os << "]}";
}

// ---- VectorStat ----------------------------------------------------

VectorStat::VectorStat(std::string name, std::string desc,
                       std::vector<std::string> lane_names)
    : StatBase(std::move(name), std::move(desc)),
      names(std::move(lane_names)), values(names.size(), 0.0)
{
    if (names.empty())
        panic("vector stat '%s' needs at least one lane",
              this->name().c_str());
}

double
VectorStat::lane(const std::string &name) const
{
    for (unsigned i = 0; i < size(); ++i) {
        if (names[i] == name)
            return values[i];
    }
    return 0.0;
}

double
VectorStat::value() const
{
    double sum = 0.0;
    for (double v : values)
        sum += v;
    return sum;
}

void
VectorStat::reset()
{
    for (double &v : values)
        v = 0.0;
}

void
VectorStat::print(std::ostream &os) const
{
    os << std::left << std::setw(48) << name()
       << std::right << std::setw(16) << value()
       << "  # " << description() << '\n';
    for (unsigned i = 0; i < size(); ++i) {
        os << "  " << std::left << std::setw(46)
           << ("  " + names[i])
           << std::right << std::setw(16) << values[i] << '\n';
    }
}

void
VectorStat::printJson(std::ostream &os) const
{
    os << "{\"kind\":\"vector\",\"desc\":\""
       << jsonEscape(description()) << "\",\"value\":"
       << jsonNumber(value()) << ",\"lanes\":{";
    for (unsigned i = 0; i < size(); ++i) {
        if (i > 0)
            os << ",";
        os << '"' << jsonEscape(names[i])
           << "\":" << jsonNumber(values[i]);
    }
    os << "}}";
}

// ---- StatRegistry --------------------------------------------------

template <typename T>
T &
StatRegistry::insert(std::unique_ptr<T> stat)
{
    T &ref = *stat;
    auto [it, inserted] =
        stats.try_emplace(ref.name(), std::move(stat));
    if (!inserted)
        panic("duplicate statistic '%s'", ref.name().c_str());
    return ref;
}

Stat &
StatRegistry::add(const std::string &name, const std::string &desc)
{
    return insert(std::make_unique<Stat>(name, desc));
}

Histogram &
StatRegistry::addHistogram(const std::string &name,
                           const std::string &desc, double min,
                           double max, unsigned buckets)
{
    return insert(
        std::make_unique<Histogram>(name, desc, min, max, buckets));
}

VectorStat &
StatRegistry::addVector(const std::string &name,
                        const std::string &desc,
                        std::vector<std::string> lane_names)
{
    return insert(std::make_unique<VectorStat>(
        name, desc, std::move(lane_names)));
}

Formula &
StatRegistry::addFormula(const std::string &name,
                         const std::string &desc,
                         std::function<double()> fn)
{
    return insert(
        std::make_unique<Formula>(name, desc, std::move(fn)));
}

const StatBase *
StatRegistry::find(const std::string &name) const
{
    auto it = stats.find(name);
    return it == stats.end() ? nullptr : it->second.get();
}

double
StatRegistry::sumByPrefix(const std::string &prefix) const
{
    double sum = 0.0;
    for (auto it = stats.lower_bound(prefix); it != stats.end(); ++it) {
        if (it->first.compare(0, prefix.size(), prefix) != 0)
            break;
        sum += it->second->value();
    }
    return sum;
}

void
StatRegistry::dump(std::ostream &os) const
{
    for (const auto &[name, stat] : stats)
        stat->print(os);
}

void
StatRegistry::dumpJson(std::ostream &os) const
{
    os << "{";
    bool first = true;
    for (const auto &[name, stat] : stats) {
        if (!first)
            os << ",";
        first = false;
        os << '"' << jsonEscape(name) << "\":";
        stat->printJson(os);
    }
    os << "}";
}

std::string
StatRegistry::dumpJsonString() const
{
    std::ostringstream os;
    dumpJson(os);
    return os.str();
}

void
StatRegistry::resetAll()
{
    for (auto &[name, stat] : stats)
        stat->reset();
}

} // namespace salam

/**
 * @file
 * Fundamental simulation types: ticks, cycles, and frequency helpers.
 *
 * A Tick is the base unit of simulated time. Following gem5, one tick
 * equals one picosecond, giving headroom to express multi-GHz clocks
 * exactly as integer periods.
 */

#ifndef SALAM_SIM_TYPES_HH
#define SALAM_SIM_TYPES_HH

#include <cstdint>

namespace salam
{

/** Simulated time in picoseconds. */
using Tick = std::uint64_t;

/** Sentinel for "no scheduled time". */
constexpr Tick maxTick = ~Tick(0);

/** One simulated second, in ticks. */
constexpr Tick simSecond = 1'000'000'000'000ULL;

/** Strongly-typed cycle count for clocked objects. */
class Cycles
{
  public:
    Cycles() = default;

    constexpr explicit Cycles(std::uint64_t c) : count(c) {}

    constexpr std::uint64_t get() const { return count; }

    constexpr Cycles operator+(Cycles o) const
    { return Cycles(count + o.count); }

    constexpr Cycles operator-(Cycles o) const
    { return Cycles(count - o.count); }

    Cycles &operator+=(Cycles o) { count += o.count; return *this; }

    Cycles &operator++() { ++count; return *this; }

    constexpr auto operator<=>(const Cycles &) const = default;

  private:
    std::uint64_t count = 0;
};

/** Convert a clock frequency in MHz to a period in ticks. */
constexpr Tick
periodFromMhz(double mhz)
{
    return static_cast<Tick>(1e6 / mhz);
}

/** Convert a clock frequency in GHz to a period in ticks. */
constexpr Tick
periodFromGhz(double ghz)
{
    return static_cast<Tick>(1e3 / ghz);
}

} // namespace salam

#endif // SALAM_SIM_TYPES_HH

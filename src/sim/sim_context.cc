#include "sim_context.hh"

#include <cstdio>
#include <cstdlib>

namespace salam
{

constinit thread_local SimContext *SimContext::tlsContext = nullptr;

SimContext &
SimContext::processDefault()
{
    static SimContext ctx;
    return ctx;
}

void
SimContext::emitLog(const std::string &line) const
{
    if (_sink) {
        _sink(line);
        return;
    }
    std::fputs(line.c_str(), stderr);
    std::fputc('\n', stderr);
}

std::size_t
SimContext::addTerminationHook(TerminationHook hook)
{
    std::size_t id = _nextHookId++;
    _hooks.push_back({id, std::move(hook)});
    return id;
}

void
SimContext::removeTerminationHook(std::size_t id)
{
    for (auto it = _hooks.begin(); it != _hooks.end(); ++it) {
        if (it->id == id) {
            _hooks.erase(it);
            return;
        }
    }
}

void
SimContext::failFatal(const std::string &message)
{
    // Run hooks newest-first so inner scopes (a bench's artifact
    // flusher) fire before anything outer. A hook that fatal()s again
    // must not recurse into the hook list; in Throw mode the inner
    // throw propagates, so _inFatal must be restored even then for
    // the context to stay usable after the catch.
    if (!_inFatal) {
        _inFatal = true;
        auto entries = _hooks;
        try {
            for (auto it = entries.rbegin(); it != entries.rend(); ++it)
                it->hook(_outcome, message);
        } catch (...) {
            _inFatal = false;
            throw;
        }
        _inFatal = false;
    }
    if (_fatalMode == FatalMode::Throw)
        throw FatalError(_outcome, message);
    std::exit(1);
}

} // namespace salam

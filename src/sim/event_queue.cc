#include "event_queue.hh"

namespace salam
{

Event::~Event()
{
    // An event must not be destroyed while scheduled; the queue would
    // be left holding a dangling pointer. Lambda events owned by the
    // queue are destroyed only after they are serviced or skipped.
    SALAM_ASSERT(!_scheduled);
}

namespace
{

/** Marker wrapper for queue-owned one-shot lambda events. */
class OwnedLambdaEvent : public EventFunctionWrapper
{
  public:
    using EventFunctionWrapper::EventFunctionWrapper;
};

bool
isQueueOwned(Event *event)
{
    return dynamic_cast<OwnedLambdaEvent *>(event) != nullptr;
}

/**
 * Slow path of the host-limit backstop: terminate the run when the
 * bound SimContext's cancel flag is raised or its point deadline has
 * passed. This is the only hang guard that works when the simulated
 * clock is frozen (an event rescheduling itself at the same tick):
 * a sentinel scheduled at curTick + window never fires there, but
 * events keep being serviced, so this check still runs.
 */
void
checkHostLimits()
{
    SimContext &ctx = SimContext::current();
    if (ctx.cancelRequested()) {
        ctx.setFatalOutcome("skipped");
        fatal("simulation cancelled (shutdown requested)");
    }
    std::uint64_t deadline = ctx.pointDeadlineNs();
    if (deadline != 0 && obs::hostNowNs() > deadline) {
        ctx.setFatalOutcome("timeout");
        fatal("point deadline exceeded (event-loop backstop)");
    }
}

/** Events serviced between host-limit checks (power of two). */
constexpr std::uint64_t hostLimitStride = 4096;

} // namespace

EventQueue::~EventQueue()
{
    drainAll();
}

void
EventQueue::drainAll()
{
    // Drain remaining entries, releasing queue-owned lambdas.
    while (!queue.empty()) {
        Entry entry = queue.top();
        queue.pop();
        Event *ev = entry.event;
        if (ev->_scheduled && ev->_sequence == entry.sequence) {
            ev->_scheduled = false;
            if (isQueueOwned(ev))
                delete ev;
        }
    }
}

void
EventQueue::schedule(Event *event, Tick when)
{
    SALAM_ASSERT(event != nullptr);
    if (event->_scheduled)
        panic("event '%s' scheduled twice", event->name().c_str());
    if (when < _curTick)
        panic("event '%s' scheduled in the past (%llu < %llu)",
              event->name().c_str(),
              static_cast<unsigned long long>(when),
              static_cast<unsigned long long>(_curTick));

    event->_scheduled = true;
    event->_when = when;
    event->_sequence = nextSequence++;
    queue.push(Entry{when, event->priority(), event->_sequence, event});
    if (queue.size() > maxDepth)
        maxDepth = queue.size();
}

void
EventQueue::deschedule(Event *event)
{
    SALAM_ASSERT(event != nullptr);
    if (!event->_scheduled)
        panic("descheduling unscheduled event '%s'",
              event->name().c_str());
    // Lazy removal: clearing the flag makes the queue entry stale.
    event->_scheduled = false;
}

void
EventQueue::reschedule(Event *event, Tick when)
{
    if (event->_scheduled)
        deschedule(event);
    schedule(event, when);
}

void
EventQueue::schedule(Tick when, std::function<void()> callback,
                     std::string name, obs::HostPhase host_phase)
{
    auto *event = new OwnedLambdaEvent(std::move(callback),
                                       std::move(name),
                                       Event::defaultPri, host_phase);
    schedule(event, when);
    ++liveLambdas;
}

bool
EventQueue::step()
{
    while (!queue.empty()) {
        Entry entry = queue.top();
        queue.pop();
        Event *ev = entry.event;

        // Skip entries invalidated by deschedule()/reschedule().
        if (!ev->_scheduled || ev->_sequence != entry.sequence) {
            if (!ev->_scheduled && isQueueOwned(ev))
                delete ev;
            continue;
        }

        SALAM_ASSERT(entry.when >= _curTick);
        _curTick = entry.when;
        ev->_scheduled = false;
        SALAM_TRACE_AT(Event, _curTick, "event_queue",
                       "service '%s' (pri %d, %zu queued)",
                       ev->name().c_str(), ev->priority(),
                       queue.size());
        ev->process();
        ++serviced;
        if (isQueueOwned(ev) && !ev->_scheduled) {
            delete ev;
            --liveLambdas;
        }
        return true;
    }
    return false;
}

Tick
EventQueue::run(Tick limit)
{
    obs::HostTelemetry *tel =
        SimContext::current().hostTelemetry();
    std::uint64_t until_check = hostLimitStride;
    if (tel == nullptr) {
        while (!queue.empty()) {
            if (queue.top().when > limit)
                break;
            step();
            if (--until_check == 0) {
                until_check = hostLimitStride;
                checkHostLimits();
            }
        }
        return _curTick;
    }

    // Batched wall-time attribution: the clock is read only when the
    // phase of the next event differs from the running phase, so long
    // runs of same-class events (engine ticks, memory responses) cost
    // roughly one clock read per phase *transition* rather than two
    // per event. Queue bookkeeping between events of one phase is
    // attributed to that phase; the pre-first-event and residual time
    // lands in EventLoop.
    constexpr unsigned n = obs::numHostPhases;
    std::uint64_t nanos[n] = {};
    std::uint64_t counts[n] = {};
    obs::HostPhase current = obs::HostPhase::EventLoop;
    std::uint64_t stamp = obs::hostNowNs();
    while (!queue.empty()) {
        Entry top = queue.top();
        // Drop stale entries here so the classification below always
        // sees the event step() will actually service (step() skips
        // them too; this mirrors its logic).
        if (!top.event->_scheduled ||
            top.event->_sequence != top.sequence) {
            queue.pop();
            if (!top.event->_scheduled && isQueueOwned(top.event))
                delete top.event;
            continue;
        }
        if (top.when > limit)
            break;
        obs::HostPhase phase = top.event->hostPhase();
        if (phase != current) {
            std::uint64_t now = obs::hostNowNs();
            nanos[static_cast<unsigned>(current)] += now - stamp;
            stamp = now;
            current = phase;
        }
        ++counts[static_cast<unsigned>(phase)];
        step();
        if (--until_check == 0) {
            until_check = hostLimitStride;
            checkHostLimits();
        }
    }
    nanos[static_cast<unsigned>(current)] +=
        obs::hostNowNs() - stamp;
    for (unsigned i = 0; i < n; ++i) {
        if (nanos[i] != 0 || counts[i] != 0)
            tel->addPhaseTime(static_cast<obs::HostPhase>(i),
                              nanos[i], counts[i]);
    }
    return _curTick;
}

} // namespace salam

/**
 * @file
 * Lightweight statistics package.
 *
 * Components register named scalar statistics with their simulation's
 * StatRegistry; the registry supports dumping and programmatic lookup,
 * which the benches use to print per-experiment rows.
 */

#ifndef SALAM_SIM_STATISTICS_HH
#define SALAM_SIM_STATISTICS_HH

#include <cstdint>
#include <map>
#include <ostream>
#include <string>
#include <vector>

namespace salam
{

/** A named scalar statistic (count or accumulated value). */
class Stat
{
  public:
    Stat() = default;

    Stat(std::string name, std::string desc)
        : _name(std::move(name)), _desc(std::move(desc))
    {}

    const std::string &name() const { return _name; }

    const std::string &description() const { return _desc; }

    double value() const { return _value; }

    void set(double v) { _value = v; }

    Stat &operator+=(double v) { _value += v; return *this; }

    Stat &operator++() { _value += 1.0; return *this; }

    void reset() { _value = 0.0; }

  private:
    std::string _name;
    std::string _desc;
    double _value = 0.0;
};

/** Owner of all statistics in one simulation instance. */
class StatRegistry
{
  public:
    /**
     * Register a statistic. The registry owns the Stat; the returned
     * reference stays valid for the registry's lifetime.
     */
    Stat &add(const std::string &name, const std::string &desc);

    /** Look up a statistic by full name; nullptr when absent. */
    const Stat *find(const std::string &name) const;

    /** Sum of all stats whose names begin with @p prefix. */
    double sumByPrefix(const std::string &prefix) const;

    /** Dump all statistics, sorted by name. */
    void dump(std::ostream &os) const;

    void resetAll();

    std::size_t size() const { return stats.size(); }

  private:
    std::map<std::string, Stat> stats;
};

} // namespace salam

#endif // SALAM_SIM_STATISTICS_HH

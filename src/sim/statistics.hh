/**
 * @file
 * Statistics package: scalars, histograms, vectors, and formulas.
 *
 * Components register named statistics with their simulation's
 * StatRegistry, which stays the single owner; the registry supports
 * text dumping, machine-readable JSON dumping, and programmatic
 * lookup, which the benches use to print per-experiment rows.
 *
 * Stat names follow the gem5 convention `<object>.<group>.<stat>`,
 * e.g. "acc.engine.stall_causes" or "spm.mem.bank_conflicts".
 *
 * Kinds:
 *  - Stat:       a named scalar (count or accumulated value);
 *  - Histogram:  a bucketed distribution with underflow/overflow;
 *  - VectorStat: named lanes (e.g. a stall-cause breakdown);
 *  - Formula:    a value derived on demand from other state (e.g.
 *                FU utilization = busy / total), so it is always
 *                current — including after resetAll().
 */

#ifndef SALAM_SIM_STATISTICS_HH
#define SALAM_SIM_STATISTICS_HH

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <ostream>
#include <string>
#include <vector>

namespace salam
{

/** Common interface of every registered statistic. */
class StatBase
{
  public:
    StatBase(std::string name, std::string desc)
        : _name(std::move(name)), _desc(std::move(desc))
    {}

    virtual ~StatBase() = default;

    const std::string &name() const { return _name; }

    const std::string &description() const { return _desc; }

    /** Scalar summary (sum for vectors, mean for histograms). */
    virtual double value() const = 0;

    virtual void reset() = 0;

    /** "scalar", "histogram", "vector", or "formula". */
    virtual const char *kind() const = 0;

    /** One or more lines of the human-readable dump. */
    virtual void print(std::ostream &os) const;

    /** The stat's JSON value object (without the name key). */
    virtual void printJson(std::ostream &os) const;

  private:
    std::string _name;
    std::string _desc;
};

/** A named scalar statistic (count or accumulated value). */
class Stat : public StatBase
{
  public:
    Stat() : StatBase("", "") {}

    Stat(std::string name, std::string desc)
        : StatBase(std::move(name), std::move(desc))
    {}

    double value() const override { return _value; }

    void set(double v) { _value = v; }

    Stat &operator+=(double v) { _value += v; return *this; }

    Stat &operator++() { _value += 1.0; return *this; }

    void reset() override { _value = 0.0; }

    const char *kind() const override { return "scalar"; }

  private:
    double _value = 0.0;
};

/**
 * A bucketed distribution over [min, max): @p buckets equal-width
 * in-range buckets plus implicit underflow (v < min) and overflow
 * (v >= max) buckets.
 */
class Histogram : public StatBase
{
  public:
    Histogram(std::string name, std::string desc, double min,
              double max, unsigned buckets);

    void sample(double v, std::uint64_t count = 1);

    std::uint64_t count() const { return samples; }

    double sum() const { return total; }

    /** Mean of all samples (0 when empty). */
    double
    mean() const
    {
        return samples == 0
            ? 0.0
            : total / static_cast<double>(samples);
    }

    /** Smallest/largest sampled value (0 when empty). */
    double minValue() const { return samples ? seenMin : 0.0; }

    double maxValue() const { return samples ? seenMax : 0.0; }

    std::uint64_t underflow() const { return below; }

    std::uint64_t overflow() const { return above; }

    unsigned numBuckets() const
    { return static_cast<unsigned>(counts.size()); }

    std::uint64_t bucketCount(unsigned i) const { return counts[i]; }

    double bucketLow(unsigned i) const { return lo + i * width; }

    double bucketHigh(unsigned i) const { return lo + (i + 1) * width; }

    /** Scalar summary: the mean. */
    double value() const override { return mean(); }

    void reset() override;

    const char *kind() const override { return "histogram"; }

    void print(std::ostream &os) const override;

    void printJson(std::ostream &os) const override;

  private:
    double lo;
    double width;
    std::vector<std::uint64_t> counts;
    std::uint64_t below = 0;
    std::uint64_t above = 0;
    std::uint64_t samples = 0;
    double total = 0.0;
    double seenMin = 0.0;
    double seenMax = 0.0;
};

/** Named lanes sharing one stat, e.g. a stall-cause breakdown. */
class VectorStat : public StatBase
{
  public:
    VectorStat(std::string name, std::string desc,
               std::vector<std::string> lane_names);

    unsigned size() const
    { return static_cast<unsigned>(values.size()); }

    const std::string &laneName(unsigned i) const { return names[i]; }

    double lane(unsigned i) const { return values[i]; }

    /** Lane value by name; 0 for unknown lanes. */
    double lane(const std::string &name) const;

    void add(unsigned i, double v = 1.0) { values[i] += v; }

    void set(unsigned i, double v) { values[i] = v; }

    /** Scalar summary: the sum over lanes. */
    double value() const override;

    void reset() override;

    const char *kind() const override { return "vector"; }

    void print(std::ostream &os) const override;

    void printJson(std::ostream &os) const override;

  private:
    std::vector<std::string> names;
    std::vector<double> values;
};

/**
 * A derived statistic evaluated on demand, so it recomputes from
 * whatever its inputs currently hold — also after resetAll().
 */
class Formula : public StatBase
{
  public:
    Formula(std::string name, std::string desc,
            std::function<double()> fn)
        : StatBase(std::move(name), std::move(desc)),
          fn(std::move(fn))
    {}

    double value() const override { return fn ? fn() : 0.0; }

    void reset() override {} // nothing stored; inputs reset themselves

    const char *kind() const override { return "formula"; }

  private:
    std::function<double()> fn;
};

/** Owner of all statistics in one simulation instance. */
class StatRegistry
{
  public:
    /**
     * Register a scalar statistic. The registry owns it; the
     * returned reference stays valid for the registry's lifetime
     * (all add* methods behave the same way).
     */
    Stat &add(const std::string &name, const std::string &desc);

    Histogram &addHistogram(const std::string &name,
                            const std::string &desc, double min,
                            double max, unsigned buckets);

    VectorStat &addVector(const std::string &name,
                          const std::string &desc,
                          std::vector<std::string> lane_names);

    Formula &addFormula(const std::string &name,
                        const std::string &desc,
                        std::function<double()> fn);

    /** Look up a statistic by full name; nullptr when absent. */
    const StatBase *find(const std::string &name) const;

    /** Sum of all stats whose names begin with @p prefix. */
    double sumByPrefix(const std::string &prefix) const;

    /** Dump all statistics, sorted by name. */
    void dump(std::ostream &os) const;

    /**
     * Dump every statistic as one JSON object keyed by stat name;
     * each value carries its kind, description, scalar value, and
     * kind-specific payload (buckets, lanes).
     */
    void dumpJson(std::ostream &os) const;

    /** dumpJson into a string (for embedding in run reports). */
    std::string dumpJsonString() const;

    void resetAll();

    std::size_t size() const { return stats.size(); }

  private:
    template <typename T>
    T &insert(std::unique_ptr<T> stat);

    std::map<std::string, std::unique_ptr<StatBase>> stats;
};

} // namespace salam

#endif // SALAM_SIM_STATISTICS_HH

/**
 * @file
 * SimObject and ClockedObject base classes.
 *
 * Every modeled hardware component derives from SimObject, which ties
 * it to a Simulation (and therefore an EventQueue) and gives it a name
 * for logging and statistics. ClockedObject adds a clock domain with
 * cycle/tick conversion helpers, mirroring gem5's ClockedObject.
 */

#ifndef SALAM_SIM_SIM_OBJECT_HH
#define SALAM_SIM_SIM_OBJECT_HH

#include <string>

#include "event_queue.hh"
#include "obs/json.hh"
#include "types.hh"

namespace salam
{

class Simulation;

/** Base class for all simulated components. */
class SimObject
{
  public:
    SimObject(Simulation &sim, std::string name);

    virtual ~SimObject() = default;

    SimObject(const SimObject &) = delete;
    SimObject &operator=(const SimObject &) = delete;

    const std::string &name() const { return _name; }

    Simulation &simulation() const { return sim; }

    /** The event queue this object schedules on. */
    EventQueue &eventQueue() const;

    Tick curTick() const { return eventQueue().curTick(); }

    /** Called once after the full system is constructed and wired. */
    virtual void init() {}

    /** Called when simulation ends, for final stats bookkeeping. */
    virtual void finalize() {}

    /**
     * The last tick at which this object reported forward progress
     * via noteProgress(); 0 if it never has.
     */
    Tick lastProgressTick() const { return _lastProgress; }

    /**
     * Append this object's internal state to a watchdog state dump.
     * The builder is positioned inside the object's JSON object;
     * implementations add fields/arrays and must leave the nesting
     * balanced. Default: nothing beyond the common fields.
     */
    virtual void dumpDiagnostics(obs::JsonBuilder &) const {}

    /**
     * One-line explanation of why this object cannot make progress,
     * or "" if it is not stuck. The watchdog uses non-empty answers
     * to name suspects in hang reports.
     */
    virtual std::string stuckReason() const { return {}; }

  protected:
    void schedule(Event &event, Tick when)
    { eventQueue().schedule(&event, when); }

    void reschedule(Event &event, Tick when)
    { eventQueue().reschedule(&event, when); }

    void deschedule(Event &event)
    { eventQueue().deschedule(&event); }

    /**
     * Record a retirement-level progress event (instruction commit,
     * host-op retirement, DMA burst completion, data-memory service)
     * for the forward-progress watchdog. Deliberately NOT called for
     * plumbing activity (crossbar forwards, MMR polls) so a polling
     * livelock still trips the watchdog.
     */
    void noteProgress();

  private:
    Simulation &sim;
    std::string _name;
    Tick _lastProgress = 0;
};

/** A SimObject bound to a clock domain. */
class ClockedObject : public SimObject
{
  public:
    /**
     * @param clock_period Clock period in ticks (picoseconds); e.g.
     *        a 100 MHz accelerator clock is periodFromMhz(100).
     */
    ClockedObject(Simulation &sim, std::string name, Tick clock_period);

    Tick clockPeriod() const { return _clockPeriod; }

    double frequencyMhz() const { return 1e6 / _clockPeriod; }

    /** Current time expressed in whole elapsed cycles. */
    Cycles curCycle() const
    { return Cycles(curTick() / _clockPeriod); }

    /**
     * The tick of the next clock edge at least @p cycles cycles in the
     * future (0 means the next edge, or now if exactly on an edge).
     */
    Tick
    clockEdge(Cycles cycles = Cycles(0)) const
    {
        Tick now = curTick();
        Tick aligned = ((now + _clockPeriod - 1) / _clockPeriod)
            * _clockPeriod;
        return aligned + cycles.get() * _clockPeriod;
    }

    /** Convert a cycle count to ticks in this clock domain. */
    Tick cyclesToTicks(Cycles cycles) const
    { return cycles.get() * _clockPeriod; }

    /** Convert a tick duration to cycles, rounding up. */
    Cycles
    ticksToCycles(Tick ticks) const
    {
        return Cycles((ticks + _clockPeriod - 1) / _clockPeriod);
    }

  private:
    Tick _clockPeriod;
};

} // namespace salam

#endif // SALAM_SIM_SIM_OBJECT_HH

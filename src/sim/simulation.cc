#include "simulation.hh"

#include "sim_object.hh"

namespace salam
{

Simulation::Simulation() : Simulation(SimContext::current()) {}

Simulation::~Simulation()
{
    // Members destroy in reverse declaration order, so `objects`
    // would go before `queue` — fatal for a simulation abandoned
    // mid-run (timeout/cancel unwinding out of run()), whose
    // SimObjects still have member events scheduled. Deschedule
    // everything first so their destructors see clean events.
    queue.drainAll();
}

Simulation::Simulation(SimContext &context) : ctx(context)
{
    // The simulation core instruments itself; member addresses are
    // stable (Simulation is non-copyable), so formulas can read the
    // event queue live.
    registry.addFormula(
        "sim.event_queue.serviced", "events serviced since start",
        [this] { return static_cast<double>(queue.numServiced()); });
    registry.addFormula(
        "sim.event_queue.max_heap_depth",
        "high-water mark of the event heap",
        [this] { return static_cast<double>(queue.maxHeapDepth()); });
    registry.addFormula(
        "sim.ticks", "current simulated time in ticks",
        [this] { return static_cast<double>(queue.curTick()); });
}

obs::TraceSink &
Simulation::enableTracing()
{
    if (!sink)
        sink = std::make_unique<obs::TraceSink>();
    tracingEnabled = true;
    return *sink;
}

void
Simulation::initAll()
{
    ScopedSimContext bind(ctx);
    if (initialized)
        return;
    initialized = true;
    // Objects may create more objects in init(); iterate by index.
    for (std::size_t i = 0; i < registered.size(); ++i)
        registered[i]->init();
}

Tick
Simulation::run(Tick limit)
{
    // Everything that executes inside the event loop — traces,
    // inform/warn, fatal hooks — resolves against this simulation's
    // context, whatever thread run() is called from.
    ScopedSimContext bind(ctx);
    initAll();
    return queue.run(limit);
}

void
Simulation::finalizeAll()
{
    ScopedSimContext bind(ctx);
    if (finalized)
        return;
    finalized = true;
    for (auto *obj : registered)
        obj->finalize();
}

} // namespace salam

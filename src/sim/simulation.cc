#include "simulation.hh"

#include "sim_object.hh"

namespace salam
{

void
Simulation::initAll()
{
    if (initialized)
        return;
    initialized = true;
    // Objects may create more objects in init(); iterate by index.
    for (std::size_t i = 0; i < registered.size(); ++i)
        registered[i]->init();
}

Tick
Simulation::run(Tick limit)
{
    initAll();
    return queue.run(limit);
}

void
Simulation::finalizeAll()
{
    if (finalized)
        return;
    finalized = true;
    for (auto *obj : registered)
        obj->finalize();
}

} // namespace salam

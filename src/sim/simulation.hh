/**
 * @file
 * Simulation: the root container for one simulation instance.
 *
 * Owns the event queue and the statistics registry, tracks all
 * SimObjects constructed against it, and drives the run loop. Multiple
 * Simulation instances can coexist (the benches construct many).
 */

#ifndef SALAM_SIM_SIMULATION_HH
#define SALAM_SIM_SIMULATION_HH

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "event_queue.hh"
#include "obs/profiler.hh"
#include "obs/trace_sink.hh"
#include "sim_context.hh"
#include "statistics.hh"
#include "types.hh"

namespace salam
{

namespace inject
{
class FaultInjector;
} // namespace inject

class SimObject;

/** One self-contained simulation instance. */
class Simulation
{
  public:
    /** Binds to the calling thread's current SimContext. */
    Simulation();

    /** Binds to an explicit context (sweep workers pass theirs). */
    explicit Simulation(SimContext &ctx);

    /** Drains the event queue before SimObjects are destroyed. */
    ~Simulation();

    Simulation(const Simulation &) = delete;
    Simulation &operator=(const Simulation &) = delete;

    /**
     * The SimContext this simulation belongs to. run(), initAll(),
     * and finalizeAll() bind it for their duration, so flag state,
     * trace sinks, and fatal() hooks resolve per-simulation even
     * when several simulations run on different threads.
     */
    SimContext &context() const { return ctx; }

    EventQueue &eventQueue() { return queue; }

    const EventQueue &eventQueue() const { return queue; }

    StatRegistry &stats() { return registry; }

    const StatRegistry &stats() const { return registry; }

    /**
     * Turn on event tracing; must be called before run() for
     * objects that wire themselves to the sink in init(). Returns
     * the sink so the caller can export the trace afterwards.
     */
    obs::TraceSink &enableTracing();

    /** The trace sink, or nullptr while tracing is off. */
    obs::TraceSink *traceSink()
    { return tracingEnabled ? sink.get() : nullptr; }

    /**
     * Turn on dynamic-CDFG profiling; must be called before run()
     * so compute units create their recorders in init().
     */
    void enableProfiling() { profilingOn = true; }

    bool profilingEnabled() const { return profilingOn; }

    /**
     * Create the profiler for one compute unit. Per-unit recorders
     * keep static-instruction ids from colliding across
     * accelerators. The simulation owns it; @p name labels its
     * reports.
     */
    obs::Profiler &
    createProfiler(const std::string &name)
    {
        profs.emplace_back(name,
                           std::make_unique<obs::Profiler>());
        return *profs.back().second;
    }

    /** All profilers created so far, with their owners' names. */
    const std::vector<
        std::pair<std::string, std::unique_ptr<obs::Profiler>>> &
    profilers() const
    { return profs; }

    /**
     * Record external busy time (e.g. a DMA transfer) into every
     * profiler; no-op while profiling is off.
     */
    void
    noteExternalWait(const std::string &what, std::uint64_t ticks)
    {
        for (auto &[owner, prof] : profs)
            prof->noteExternalWait(what, ticks);
    }

    Tick curTick() const { return queue.curTick(); }

    /**
     * Construct a SimObject-derived component owned by this
     * simulation. Returns a reference; the object lives as long as
     * the Simulation.
     */
    template <typename T, typename... Args>
    T &
    create(Args &&...args)
    {
        auto obj = std::make_unique<T>(*this, std::forward<Args>(args)...);
        T &ref = *obj;
        objects.push_back(std::move(obj));
        return ref;
    }

    /** Called by the SimObject constructor. */
    void registerObject(SimObject *obj) { registered.push_back(obj); }

    /** Every SimObject constructed against this simulation. */
    const std::vector<SimObject *> &objectList() const
    { return registered; }

    /**
     * Count one retirement-level progress event (called via
     * SimObject::noteProgress); the watchdog compares this counter
     * across its window to detect livelock.
     */
    void noteProgress() { ++progressCount; }

    /** Total progress events recorded so far. */
    std::uint64_t progressEvents() const { return progressCount; }

    /**
     * The fault injector active for this simulation, or nullptr.
     * Non-owning: components query it at their injection sites; the
     * bench (or test) that built the FaultPlan owns the injector.
     */
    inject::FaultInjector *faultInjector() const { return injector; }

    void setFaultInjector(inject::FaultInjector *fi)
    { injector = fi; }

    /** Call init() on every object, in construction order. */
    void initAll();

    /**
     * Run the event loop to completion or until @p limit.
     * Calls initAll() on first use.
     * @return tick at which simulation stopped.
     */
    Tick run(Tick limit = maxTick);

    /** Call finalize() on every object (idempotent). */
    void finalizeAll();

  private:
    SimContext &ctx;
    EventQueue queue;
    StatRegistry registry;
    std::unique_ptr<obs::TraceSink> sink;
    bool tracingEnabled = false;
    std::vector<std::pair<std::string,
                          std::unique_ptr<obs::Profiler>>> profs;
    bool profilingOn = false;
    std::vector<std::unique_ptr<SimObject>> objects;
    std::vector<SimObject *> registered;
    std::uint64_t progressCount = 0;
    inject::FaultInjector *injector = nullptr;
    bool initialized = false;
    bool finalized = false;
};

} // namespace salam

#endif // SALAM_SIM_SIMULATION_HH

#include "trace.hh"

#include <cstdio>
#include <map>
#include <fstream>
#include <sstream>

#include "sim/logging.hh"

namespace salam::baseline
{

using namespace salam::ir;

std::uint64_t
TraceFile::generate(const Function &fn,
                    const std::vector<RuntimeValue> &args,
                    MemoryAccessor &memory, const std::string &path)
{
    std::ofstream out(path);
    if (!out)
        fatal("cannot write trace file '%s'", path.c_str());

    std::uint64_t count = 0;
    Interpreter interp(memory);
    interp.setObserver([&](const ExecRecord &rec) {
        const Instruction *inst = rec.inst;
        out << count << ' ' << opcodeName(inst->opcode()) << ' '
            << static_cast<int>(hw::fuTypeFor(*inst)) << ' '
            << (inst->type()->isVoid() ? "-" : inst->name());
        out << ' ' << rec.memAddr << ' ' << rec.memSize;
        // Operand register names; constants and block refs skipped.
        for (std::size_t o = 0; o < inst->numOperands(); ++o) {
            const Value *op = inst->operand(o);
            if (op->isConstant() ||
                op->valueKind() == Value::ValueKind::BasicBlock) {
                continue;
            }
            out << ' ' << op->name();
        }
        out << '\n';
        ++count;
    });
    interp.run(fn, args);
    return count;
}

std::vector<TraceEntry>
TraceFile::parse(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        fatal("cannot read trace file '%s'", path.c_str());

    // Opcode name -> opcode lookup built once.
    static const auto opcode_table = [] {
        std::map<std::string, Opcode> table;
        for (int op = 0; op <= static_cast<int>(Opcode::Ret); ++op) {
            table[opcodeName(static_cast<Opcode>(op))] =
                static_cast<Opcode>(op);
        }
        return table;
    }();

    std::vector<TraceEntry> entries;
    std::string line;
    while (std::getline(in, line)) {
        std::istringstream fields(line);
        TraceEntry entry;
        std::string op_name, result;
        int fu = 0;
        fields >> entry.seq >> op_name >> fu >> result >>
            entry.memAddr >> entry.memSize;
        if (!fields && line.empty())
            continue;
        auto it = opcode_table.find(op_name);
        if (it == opcode_table.end())
            fatal("bad trace line: '%s'", line.c_str());
        entry.opcode = it->second;
        entry.fu = static_cast<hw::FuType>(fu);
        entry.result = result == "-" ? "" : result;
        std::string operand;
        while (fields >> operand)
            entry.operands.push_back(operand);
        entries.push_back(std::move(entry));
    }
    return entries;
}

std::uint64_t
TraceFile::fileBytes(const std::string &path)
{
    std::ifstream in(path, std::ios::ate | std::ios::binary);
    if (!in)
        return 0;
    return static_cast<std::uint64_t>(in.tellg());
}

} // namespace salam::baseline

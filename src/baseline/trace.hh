/**
 * @file
 * Dynamic-trace generation and parsing for the Aladdin-style
 * baseline simulator.
 *
 * Like the original Aladdin flow, the baseline instruments a
 * functional execution of the kernel and writes every executed
 * LLVM-IR operation to an on-disk trace, then re-reads that file to
 * drive simulation. The file round-trip is kept deliberately real:
 * the preprocessing and trace-loading costs in the Table IV
 * comparison come from here.
 */

#ifndef SALAM_BASELINE_TRACE_HH
#define SALAM_BASELINE_TRACE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "hw/functional_unit.hh"
#include "ir/interpreter.hh"

namespace salam::baseline
{

/** One executed operation in the trace. */
struct TraceEntry
{
    std::uint64_t seq = 0;
    ir::Opcode opcode = ir::Opcode::Add;
    hw::FuType fu = hw::FuType::None;
    /** Result register name ("" for void results). */
    std::string result;
    /** Operand register names (constants omitted). */
    std::vector<std::string> operands;
    std::uint64_t memAddr = 0;
    std::uint32_t memSize = 0;

    bool isLoad() const { return opcode == ir::Opcode::Load; }

    bool isStore() const { return opcode == ir::Opcode::Store; }
};

/** Generates and parses trace files. */
class TraceFile
{
  public:
    /**
     * Execute @p fn functionally and write the dynamic trace to
     * @p path.
     * @return number of trace entries written.
     */
    static std::uint64_t
    generate(const ir::Function &fn,
             const std::vector<ir::RuntimeValue> &args,
             ir::MemoryAccessor &memory, const std::string &path);

    /** Parse a trace file back into memory. */
    static std::vector<TraceEntry> parse(const std::string &path);

    /** Size of the trace file in bytes (footprint statistics). */
    static std::uint64_t fileBytes(const std::string &path);
};

} // namespace salam::baseline

#endif // SALAM_BASELINE_TRACE_HH

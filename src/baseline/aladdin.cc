#include "aladdin.hh"

#include <algorithm>
#include <chrono>
#include <map>
#include <unordered_map>
#include <vector>

#include "sim/logging.hh"

namespace salam::baseline
{

using namespace salam::hw;

namespace
{

/** Functional set-associative cache for trace retiming. */
class TraceCache
{
  public:
    explicit TraceCache(const AladdinMemoryConfig &cfg) : cfg(cfg)
    {
        std::uint64_t blocks =
            cfg.cacheSizeBytes / cfg.cacheBlockBytes;
        numSets = std::max<std::uint64_t>(
            1, blocks / cfg.cacheAssociativity);
        sets.resize(numSets);
    }

    /** @return access latency; updates hit/miss counters. */
    unsigned
    access(std::uint64_t addr)
    {
        std::uint64_t block = addr / cfg.cacheBlockBytes;
        std::uint64_t set = block % numSets;
        std::uint64_t tag = block / numSets;
        auto &ways = sets[set];
        for (std::size_t i = 0; i < ways.size(); ++i) {
            if (ways[i] == tag) {
                // LRU: move to front.
                ways.erase(ways.begin() +
                           static_cast<std::ptrdiff_t>(i));
                ways.insert(ways.begin(), tag);
                ++hits;
                return cfg.cacheHitLatency;
            }
        }
        ways.insert(ways.begin(), tag);
        if (ways.size() > cfg.cacheAssociativity)
            ways.pop_back();
        ++misses;
        return cfg.cacheMissLatency;
    }

    std::uint64_t hits = 0;
    std::uint64_t misses = 0;

  private:
    AladdinMemoryConfig cfg;
    std::uint64_t numSets;
    std::vector<std::vector<std::uint64_t>> sets;
};

} // namespace

AladdinResult
AladdinSimulator::schedule(const std::vector<TraceEntry> &trace) const
{
    AladdinResult result;
    result.dynamicNodes = trace.size();

    // --- DDDG construction -------------------------------------
    // Register dependences: last writer of each register name.
    // Memory dependences: last store to each byte address.
    std::unordered_map<std::string, std::uint64_t> last_writer;
    std::unordered_map<std::uint64_t, std::uint64_t> last_store;
    std::vector<std::vector<std::uint64_t>> preds(trace.size());

    for (std::size_t i = 0; i < trace.size(); ++i) {
        const TraceEntry &entry = trace[i];
        for (const std::string &operand : entry.operands) {
            auto it = last_writer.find(operand);
            if (it != last_writer.end())
                preds[i].push_back(it->second);
        }
        if (entry.isLoad() || entry.isStore()) {
            for (std::uint32_t byte = 0; byte < entry.memSize;
                 ++byte) {
                auto it = last_store.find(entry.memAddr + byte);
                if (it != last_store.end())
                    preds[i].push_back(it->second);
            }
        }
        if (entry.isStore()) {
            for (std::uint32_t byte = 0; byte < entry.memSize;
                 ++byte) {
                last_store[entry.memAddr + byte] = i;
            }
        }
        if (!entry.result.empty())
            last_writer[entry.result] = i;
    }

    // --- Scheduling ---------------------------------------------
    // Dependence-constrained ASAP with a memory-port/latency model.
    // Compute resources are unconstrained: the datapath is derived
    // from the schedule afterwards (reverse engineering).
    TraceCache cache(cfg.memory);
    bool use_cache =
        cfg.memory.kind == AladdinMemoryConfig::Kind::Cache;

    std::vector<std::uint64_t> start(trace.size(), 0);
    std::vector<std::uint64_t> finish(trace.size(), 0);
    std::map<std::uint64_t, unsigned> read_port_use;
    std::map<std::uint64_t, unsigned> write_port_use;
    unsigned read_ports = use_cache ? cfg.memory.cachePorts
                                    : cfg.memory.spmReadPorts;
    unsigned write_ports = use_cache ? cfg.memory.cachePorts
                                     : cfg.memory.spmWritePorts;

    std::uint64_t total = 0;
    for (std::size_t i = 0; i < trace.size(); ++i) {
        const TraceEntry &entry = trace[i];
        std::uint64_t ready = 0;
        for (std::uint64_t p : preds[i])
            ready = std::max(ready, finish[p]);

        unsigned latency;
        if (entry.isLoad() || entry.isStore()) {
            // Port contention delays issue to a free slot.
            auto &use =
                entry.isLoad() ? read_port_use : write_port_use;
            unsigned ports =
                entry.isLoad() ? read_ports : write_ports;
            while (use[ready] >= ports)
                ++ready;
            ++use[ready];
            latency = use_cache ? cache.access(entry.memAddr)
                                : cfg.memory.spmLatency;
        } else if (entry.fu != FuType::None) {
            latency = cfg.profile.fu(entry.fu).latencyCycles;
        } else {
            latency = 0;
        }

        start[i] = ready;
        finish[i] = ready + std::max<unsigned>(latency, 1);
        total = std::max(total, finish[i]);
    }
    result.cycles = total;
    result.cacheHits = cache.hits;
    result.cacheMisses = cache.misses;

    // --- Datapath reverse-engineering ---------------------------
    // A unit of type T is needed for each op of type T active in a
    // cycle; the instantiated count is the peak over the schedule.
    std::map<std::uint64_t, std::array<unsigned, numFuTypes>>
        active;
    for (std::size_t i = 0; i < trace.size(); ++i) {
        const TraceEntry &entry = trace[i];
        if (entry.fu == FuType::None || entry.isLoad() ||
            entry.isStore()) {
            continue;
        }
        // Pipelined units: occupied for the initiation interval.
        unsigned ii =
            cfg.profile.fu(entry.fu).initiationInterval;
        for (unsigned c = 0; c < ii; ++c) {
            ++active[start[i] + c]
                    [static_cast<std::size_t>(entry.fu)];
        }
    }
    for (auto &[cycle, counts] : active) {
        for (std::size_t t = 0; t < numFuTypes; ++t) {
            result.fuCounts[t] =
                std::max(result.fuCounts[t], counts[t]);
        }
    }
    return result;
}

AladdinResult
AladdinSimulator::run(const ir::Function &fn,
                      const std::vector<ir::RuntimeValue> &args,
                      ir::MemoryAccessor &memory,
                      const std::string &trace_path) const
{
    using clock = std::chrono::steady_clock;

    auto t0 = clock::now();
    TraceFile::generate(fn, args, memory, trace_path);
    auto t1 = clock::now();

    auto trace = TraceFile::parse(trace_path);
    AladdinResult result = schedule(trace);
    auto t2 = clock::now();

    result.traceBytes = TraceFile::fileBytes(trace_path);
    result.traceGenSeconds =
        std::chrono::duration<double>(t1 - t0).count();
    result.simulateSeconds =
        std::chrono::duration<double>(t2 - t1).count();
    return result;
}

} // namespace salam::baseline

#!/usr/bin/env bash
# Chaos harness for crash-resilient sweeps: repeatedly kill a
# store-backed design-space sweep mid-run (SIGTERM for the graceful
# drain path, SIGKILL for the durability path), resume it from its own
# store until it completes, then prove the merged store is equivalent
# to an uninterrupted baseline run:
#
#   - `salam-query diff` pairs every point with the baseline, with no
#     unpaired rows and no changed fields (determinism survives the
#     kill/resume cycle);
#   - every point of the grid has a terminal ok/cached sweep_point
#     record, and only the final pass's sweep record reports "ok"
#     (exact accounting).
#
# Usage: scripts/chaos_sweep.sh [--build-dir D] [--seed N] [--kills N]
#                               [--threads N] [--keep]
#   --build-dir  tree holding bench/fig13_gemm_pareto and
#                src/tools/salam-query (default: build/)
#   --seed       RNG seed for the kill schedule (default: 1)
#   --kills      interruptions to attempt before letting the sweep
#                finish unharmed (default: 3)
#   --threads    sweep worker threads (default: 4)
#   --keep       keep the scratch directory for inspection

set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
build_dir="${repo_root}/build"
seed=1
kills=3
threads=4
keep=0

while [[ $# -gt 0 ]]; do
    case "$1" in
        --build-dir) build_dir="$2"; shift 2 ;;
        --seed)      seed="$2"; shift 2 ;;
        --kills)     kills="$2"; shift 2 ;;
        --threads)   threads="$2"; shift 2 ;;
        --keep)      keep=1; shift ;;
        *) echo "unknown argument: $1" >&2; exit 2 ;;
    esac
done

bench="${build_dir}/bench/fig13_gemm_pareto"
query="${build_dir}/src/tools/salam-query"
for bin in "${bench}" "${query}"; do
    if [[ ! -x "${bin}" ]]; then
        echo "missing ${bin}; build fig13_gemm_pareto and" \
             "salam-query first" >&2
        exit 2
    fi
done

scratch="$(mktemp -d -t chaos_sweep.XXXXXX)"
cleanup() { [[ "${keep}" -eq 1 ]] || rm -rf "${scratch}"; }
trap cleanup EXIT
echo "chaos_sweep: seed=${seed} kills=${kills} threads=${threads}" \
     "scratch=${scratch}"

# Seeded kill schedule: bash's RANDOM is a deterministic LCG per seed,
# so a failing schedule can be replayed exactly with --seed.
RANDOM="${seed}"

echo "== baseline: uninterrupted sweep"
"${bench}" --sweep-threads "${threads}" \
    --store-out "${scratch}/baseline" \
    --dump-out "${scratch}/baseline_dump.json" \
    >"${scratch}/baseline.out" 2>&1

chaos_store="${scratch}/chaos"
run_args=(--sweep-threads "${threads}" --store-out "${chaos_store}"
          --resume "${chaos_store}"
          --dump-out "${scratch}/chaos_dump.json")

echo "== chaos: kill/resume loop"
attempt=0
killed=0
while :; do
    attempt=$((attempt + 1))
    if [[ "${attempt}" -gt $((kills + 10)) ]]; then
        echo "chaos loop did not converge after ${attempt} passes" >&2
        exit 1
    fi
    "${bench}" "${run_args[@]}" \
        >"${scratch}/chaos.${attempt}.out" 2>&1 &
    pid=$!
    if [[ "${killed}" -lt "${kills}" ]]; then
        # Strike inside the sweep's lifetime (it runs a couple of
        # seconds); alternate graceful and hard kills by seed.
        delay_ms=$((200 + RANDOM % 1200))
        sig=SIGTERM
        [[ $((RANDOM % 2)) -eq 0 ]] && sig=SIGKILL
        sleep "$(awk "BEGIN{print ${delay_ms}/1000}")"
        kill "-${sig}" "${pid}" 2>/dev/null || true
        killed=$((killed + 1))
    fi
    got=0
    wait "${pid}" || got=$?
    case "${got}" in
        0)
            echo "pass ${attempt}: complete (exit 0)"
            break ;;
        75)
            echo "pass ${attempt}: drained (exit 75), resuming" ;;
        137|143)
            echo "pass ${attempt}: killed (${got}), resuming" ;;
        *)
            echo "pass ${attempt}: unexpected exit ${got}" >&2
            cat "${scratch}/chaos.${attempt}.out" >&2
            exit 1 ;;
    esac
done

echo "== verify: merged store vs baseline"
"${query}" diff "${scratch}/baseline" "${chaos_store}" \
    --kind run --outcome ok --json >"${scratch}/diff.json"
"${query}" list "${chaos_store}" --json >"${scratch}/chaos_list.json"
python3 - "${scratch}/diff.json" "${scratch}/chaos_list.json" \
    "${attempt}" <<'PYEOF'
import json, sys
diff = json.load(open(sys.argv[1]))
records = json.load(open(sys.argv[2]))
passes = int(sys.argv[3])

assert diff["paired"] == 20, \
    f"expected 20 paired points, got {diff['paired']}"
assert diff["only_in_a"] == 0 and diff["only_in_b"] == 0, \
    f"unpaired rows: {diff['only_in_a']}/{diff['only_in_b']}"
changed = [r["point"] for r in diff["rows"] if r["changed"]]
assert not changed, f"kill/resume changed results at {changed}"

# Exact accounting: a terminal ok/cached record per grid point, and
# only the final pass's sweep record finished clean.
done = {r["point"] for r in records
        if r["kind"] == "sweep_point"
        and r["outcome"] in ("ok", "cached")}
missing = sorted(set(range(20)) - done)
assert not missing, f"points with no terminal record: {missing}"
# A SIGKILLed pass dies before writing its sweep record, so the
# count is bounded by the pass count rather than equal to it.
sweeps = [r for r in records if r["kind"] == "sweep"]
assert 1 <= len(sweeps) <= passes, \
    f"{len(sweeps)} sweep records for {passes} passes"
assert sweeps[-1]["outcome"] == "ok", sweeps[-1]["outcome"]
assert all(s["outcome"] != "ok" for s in sweeps[:-1]), \
    "a non-final pass claims a clean finish"
print(f"chaos ok: 20/20 points paired and unchanged, "
      f"{len(sweeps)} passes, terminal records complete")
PYEOF

echo "chaos_sweep: all invariants held"

#!/usr/bin/env bash
# Tier-1 verification: configure, build, run the full test suite, and
# additionally build warning-clean under -Wall -Wextra -Werror.
#
# Usage: scripts/check.sh [build-dir]
#   build-dir defaults to build/ (reused if already configured).
# The strict -Werror pass uses its own tree (build-strict/) so it
# never pollutes the primary build's cache.

set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
build_dir="${1:-${repo_root}/build}"
strict_dir="${repo_root}/build-strict"
jobs="$(nproc 2>/dev/null || echo 4)"

echo "== tier-1: configure + build (${build_dir})"
cmake -S "${repo_root}" -B "${build_dir}" >/dev/null
cmake --build "${build_dir}" -j "${jobs}"

echo "== tier-1: ctest"
ctest --test-dir "${build_dir}" --output-on-failure

echo "== smoke: GEMM profiler + interval stats"
smoke_dir="$(mktemp -d)"
trap 'rm -rf "${smoke_dir}"' EXIT
"${build_dir}/bench/fig14_gemm_stalls" \
    --profile-out "${smoke_dir}/profile.json" \
    --stats-out "${smoke_dir}/stats.json" \
    --stats-interval 1000 >/dev/null
python3 - "${smoke_dir}" <<'PYEOF'
import json, sys
d = sys.argv[1]

prof = json.load(open(f"{d}/profile.json"))
for key in ("schema", "path_cycles", "sink_commit_cycle", "causes",
            "by_instruction", "by_block"):
    assert key in prof, f"profile.json missing '{key}'"
assert prof["path_cycles"] > 0, "empty critical path"
assert sum(prof["causes"].values()) == prof["path_cycles"], \
    "cause attribution does not sum to the path length"
assert prof["by_instruction"], "no instruction hotspots"

folded = open(f"{d}/profile.json.folded").read().splitlines()
assert folded and all(";" in line for line in folded), \
    "malformed folded stacks"

rows = [json.loads(line)
        for line in open(f"{d}/stats.json.intervals.jsonl")]
assert rows, "no interval rows"
for row in rows:
    for key in ("index", "start_tick", "end_tick", "stats"):
        assert key in row, f"interval row missing '{key}'"
print(f"profiler smoke ok: path={prof['path_cycles']} cycles, "
      f"{len(rows)} interval rows")
PYEOF

echo "== strict: -Wall -Wextra -Werror build (${strict_dir})"
cmake -S "${repo_root}" -B "${strict_dir}" \
    -DCMAKE_CXX_FLAGS="-Wall -Wextra -Werror" >/dev/null
cmake --build "${strict_dir}" -j "${jobs}"

echo "== all checks passed"

#!/usr/bin/env bash
# Tier-1 verification: configure, build, run the full test suite, and
# additionally build warning-clean under -Wall -Wextra -Werror.
#
# Usage: scripts/check.sh [build-dir]
#   build-dir defaults to build/ (reused if already configured).
# The strict -Werror pass uses its own tree (build-strict/) so it
# never pollutes the primary build's cache.

set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
build_dir="${1:-${repo_root}/build}"
strict_dir="${repo_root}/build-strict"
jobs="$(nproc 2>/dev/null || echo 4)"

echo "== tier-1: configure + build (${build_dir})"
cmake -S "${repo_root}" -B "${build_dir}" >/dev/null
cmake --build "${build_dir}" -j "${jobs}"

echo "== tier-1: ctest"
ctest --test-dir "${build_dir}" --output-on-failure

echo "== strict: -Wall -Wextra -Werror build (${strict_dir})"
cmake -S "${repo_root}" -B "${strict_dir}" \
    -DCMAKE_CXX_FLAGS="-Wall -Wextra -Werror" >/dev/null
cmake --build "${strict_dir}" -j "${jobs}"

echo "== all checks passed"

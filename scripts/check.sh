#!/usr/bin/env bash
# Tier-1 verification: configure, build, run the full test suite, and
# additionally build warning-clean under -Wall -Wextra -Werror.
#
# Usage: scripts/check.sh [build-dir]
#   build-dir defaults to build/ (reused if already configured).
# The strict -Werror pass uses its own tree (build-strict/) so it
# never pollutes the primary build's cache; likewise the sanitizer
# trees (build-asan/, build-tsan/) and the Release perf tree
# (build-perf/), which guards the GEMM simulation rate against a
# >20% regression from the recorded BENCH_simrate.json baseline.

set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
build_dir="${1:-${repo_root}/build}"
strict_dir="${repo_root}/build-strict"
jobs="$(nproc 2>/dev/null || echo 4)"

echo "== tier-1: configure + build (${build_dir})"
cmake -S "${repo_root}" -B "${build_dir}" >/dev/null
cmake --build "${build_dir}" -j "${jobs}"

echo "== tier-1: ctest"
ctest --test-dir "${build_dir}" --output-on-failure

echo "== smoke: GEMM profiler + interval stats"
smoke_dir="$(mktemp -d)"
trap 'rm -rf "${smoke_dir}"' EXIT
"${build_dir}/bench/fig14_gemm_stalls" \
    --profile-out "${smoke_dir}/profile.json" \
    --stats-out "${smoke_dir}/stats.json" \
    --stats-interval 1000 >/dev/null
python3 - "${smoke_dir}" <<'PYEOF'
import json, sys
d = sys.argv[1]

prof = json.load(open(f"{d}/profile.json"))
for key in ("schema", "path_cycles", "sink_commit_cycle", "causes",
            "by_instruction", "by_block"):
    assert key in prof, f"profile.json missing '{key}'"
assert prof["path_cycles"] > 0, "empty critical path"
assert sum(prof["causes"].values()) == prof["path_cycles"], \
    "cause attribution does not sum to the path length"
assert prof["by_instruction"], "no instruction hotspots"

folded = open(f"{d}/profile.json.folded").read().splitlines()
assert folded and all(";" in line for line in folded), \
    "malformed folded stacks"

rows = [json.loads(line)
        for line in open(f"{d}/stats.json.intervals.jsonl")]
assert rows, "no interval rows"
for row in rows:
    for key in ("index", "start_tick", "end_tick", "stats"):
        assert key in row, f"interval row missing '{key}'"
print(f"profiler smoke ok: path={prof['path_cycles']} cycles, "
      f"{len(rows)} interval rows")
PYEOF

echo "== smoke: fault-injection campaign"
camp="${build_dir}/bench/fault_campaign"
camp_dir="${smoke_dir}/campaign"
mkdir -p "${camp_dir}"

run_campaign() {
    # run_campaign <tag> <expected-exit> <spec-or-empty>
    local tag="$1" want_exit="$2" spec="$3"
    local args=(--watchdog 2000000
                --dump-out "${camp_dir}/${tag}.dump.json"
                --report-out "${camp_dir}/${tag}.jsonl")
    [[ -n "${spec}" ]] && args+=(--inject "${spec}")
    local got=0
    "${camp}" "${args[@]}" >"${camp_dir}/${tag}.out" 2>&1 || got=$?
    if [[ "${got}" -ne "${want_exit}" ]]; then
        echo "campaign '${tag}' exited ${got}, expected ${want_exit}"
        cat "${camp_dir}/${tag}.out"
        exit 1
    fi
}

# One scenario per fault kind; every run must terminate gracefully
# (exit 0 or a clean fatal with artifacts — never a hang or abort).
run_campaign clean          0 ""
run_campaign bit_flip       1 "bit_flip@spm:nth=100:bit=30"
run_campaign drop_response  1 "drop_response@spm:nth=300"
run_campaign drop_irq       1 "drop_irq@relu.comm:nth=1"
run_campaign spurious_irq   1 "spurious_irq@host:nth=2"
run_campaign retry_storm    0 "retry_storm@spm:nth=10:count=20"
run_campaign delay_response 0 "delay_response@spm:nth=50:count=5:delay=100000"
run_campaign dma_stall      0 "dma_stall@dma:nth=1:delay=500000"

python3 - "${camp_dir}" <<'PYEOF'
import json, sys
d = sys.argv[1]

def outcome(tag):
    rows = [json.loads(line) for line in open(f"{d}/{tag}.jsonl")]
    assert rows, f"{tag}: empty run report"
    return rows[-1]["outcome"]

expected = {
    "clean": "ok", "bit_flip": "fault", "drop_response": "deadlock",
    "drop_irq": "deadlock", "spurious_irq": "fault",
    "retry_storm": "ok", "delay_response": "ok", "dma_stall": "ok",
}
for tag, want in expected.items():
    got = outcome(tag)
    assert got == want, f"{tag}: outcome {got!r}, expected {want!r}"

# Hang dumps must name the component that is actually stuck.
for tag, stuck in (("drop_response", "c0.relu"), ("drop_irq", "host")):
    dump = json.load(open(f"{d}/{tag}.dump.json"))
    names = [s["object"] for s in dump["suspects"]]
    assert stuck in names, \
        f"{tag}: dump suspects {names} do not include {stuck}"
print("fault campaign ok: " +
      ", ".join(f"{t}={o}" for t, o in expected.items()))
PYEOF

echo "== smoke: replay determinism (same seed => same faults)"
for n in 1 2; do
    got=0
    "${camp}" --inject 'bit_flip@spm' --inject-seed 42 \
        >"${camp_dir}/replay.${n}.out" 2>&1 || got=$?
    if [[ "${got}" -ne 1 ]]; then
        echo "replay run ${n} exited ${got}, expected 1"
        cat "${camp_dir}/replay.${n}.out"
        exit 1
    fi
done
if ! cmp -s "${camp_dir}/replay.1.out" "${camp_dir}/replay.2.out"; then
    echo "replay runs diverged with the same seed:"
    diff "${camp_dir}/replay.1.out" "${camp_dir}/replay.2.out" || true
    exit 1
fi
echo "replay deterministic"

echo "== sanitizers: ASan + UBSan"
asan_dir="${repo_root}/build-asan"
san_flags="-fsanitize=address,undefined -fno-sanitize-recover=all -g -O1"
echo 'int main() { return 0; }' > "${smoke_dir}/probe.cc"
if c++ ${san_flags} -o "${smoke_dir}/probe" "${smoke_dir}/probe.cc" \
        2>/dev/null && "${smoke_dir}/probe"; then
    cmake -S "${repo_root}" -B "${asan_dir}" \
        -DCMAKE_CXX_FLAGS="${san_flags}" \
        -DCMAKE_EXE_LINKER_FLAGS="-fsanitize=address,undefined" \
        >/dev/null
    cmake --build "${asan_dir}" -j "${jobs}"
    # fatal() terminates without unwinding by design, so leak
    # checking would flag every intentional-death test; errors still
    # abort via -fno-sanitize-recover.
    ASAN_OPTIONS=detect_leaks=0 UBSAN_OPTIONS=print_stacktrace=1 \
        ctest --test-dir "${asan_dir}" --output-on-failure
    got=0
    ASAN_OPTIONS=detect_leaks=0 \
        "${asan_dir}/bench/fault_campaign" \
        --inject 'bit_flip@spm:nth=100:bit=30' \
        >"${smoke_dir}/asan_campaign.out" 2>&1 || got=$?
    if [[ "${got}" -ne 1 ]]; then
        echo "sanitized campaign exited ${got}, expected 1"
        cat "${smoke_dir}/asan_campaign.out"
        exit 1
    fi
    echo "sanitizer job ok"
else
    echo "sanitizers unavailable on this toolchain; skipping"
fi

echo "== sanitizers: TSan (sweep concurrency)"
tsan_dir="${repo_root}/build-tsan"
tsan_flags="-fsanitize=thread -g -O1"
if c++ ${tsan_flags} -o "${smoke_dir}/tsan_probe" \
        "${smoke_dir}/probe.cc" 2>/dev/null && \
        "${smoke_dir}/tsan_probe"; then
    cmake -S "${repo_root}" -B "${tsan_dir}" \
        -DCMAKE_CXX_FLAGS="${tsan_flags}" \
        -DCMAKE_EXE_LINKER_FLAGS="-fsanitize=thread" \
        >/dev/null
    # Only the thread-parallel surface needs TSan coverage: the
    # SweepRunner/SimContext tests, the result-store writer, and a
    # real multi-threaded sweep (which now also appends to a store).
    cmake --build "${tsan_dir}" -j "${jobs}" \
        --target drive_test sim_test obs_test fig13_gemm_pareto \
        interconnect_sweep
    TSAN_OPTIONS=halt_on_error=1 \
        "${tsan_dir}/tests/drive/drive_test"
    TSAN_OPTIONS=halt_on_error=1 \
        "${tsan_dir}/tests/sim/sim_test" \
        --gtest_filter='SimContext*'
    TSAN_OPTIONS=halt_on_error=1 \
        "${tsan_dir}/tests/obs/obs_test" \
        --gtest_filter='StoreTest*:ReportBufferTest*'
    TSAN_OPTIONS=halt_on_error=1 \
        "${tsan_dir}/bench/fig13_gemm_pareto" --sweep-threads 4 \
        --store-out "${smoke_dir}/tsan_store" \
        >"${smoke_dir}/tsan_sweep.out"
    # Resume over the just-written store: the checkpoint/resume and
    # durable-flush paths (signal flags, per-point store appends)
    # race-checked under TSan. drive_test above already covers the
    # in-process chaos/interrupt/retry suite.
    TSAN_OPTIONS=halt_on_error=1 \
        "${tsan_dir}/bench/fig13_gemm_pareto" --sweep-threads 4 \
        --store-out "${smoke_dir}/tsan_store" \
        --resume "${smoke_dir}/tsan_store" \
        >"${smoke_dir}/tsan_resume.out"
    grep -q "cached" "${smoke_dir}/tsan_resume.out"
    # Interconnect axes under worker concurrency: fabric points all
    # fall back to full simulation, so this drives the AXI bus and
    # crossbar credit paths from 4 sweep threads at once.
    TSAN_OPTIONS=halt_on_error=1 \
        "${tsan_dir}/bench/interconnect_sweep" --sweep-threads 4 \
        --skip-cluster-curve --sim-mode auto \
        --store-out "${smoke_dir}/tsan_ic_store" \
        >"${smoke_dir}/tsan_ic.out"
    echo "tsan job ok"
else
    echo "thread sanitizer unavailable on this toolchain; skipping"
fi

echo "== perf: Release GEMM simulation-rate gate (salam-query)"
perf_dir="${repo_root}/build-perf"
cmake -S "${repo_root}" -B "${perf_dir}" \
    -DCMAKE_BUILD_TYPE=Release >/dev/null
cmake --build "${perf_dir}" -j "${jobs}" \
    --target table4_simulation_time salam-query
salam_query="${perf_dir}/src/tools/salam-query"
"${perf_dir}/bench/table4_simulation_time" --gemm-only \
    --simrate-out "${smoke_dir}/simrate.json" \
    --store-out "${smoke_dir}/simrate_store" \
    >"${smoke_dir}/simrate.out"
baseline_file="${repo_root}/BENCH_simrate.json"
if [[ ! -f "${baseline_file}" ]]; then
    cp "${smoke_dir}/simrate.json" "${baseline_file}"
    echo "no recorded baseline; wrote ${baseline_file}"
else
    # >20% below the recorded baseline fails the build; wall-clock
    # noise on shared runners stays well inside this margin.
    "${salam_query}" regress "${smoke_dir}/simrate_store" \
        --baseline "${baseline_file}" --max-drop-pct 20 \
        --kernel gemm
    # The gate must actually bite: against a baseline doctored 10x
    # faster, regress has to exit 2 (regression detected).
    python3 - "${baseline_file}" "${smoke_dir}/fast_baseline.json" \
        <<'PYEOF'
import json, sys
doc = json.load(open(sys.argv[1]))
for k in doc["kernels"]:
    k["ticks_per_sec"] *= 10
json.dump(doc, open(sys.argv[2], "w"))
PYEOF
    got=0
    "${salam_query}" regress "${smoke_dir}/simrate_store" \
        --baseline "${smoke_dir}/fast_baseline.json" \
        --max-drop-pct 20 >/dev/null || got=$?
    if [[ "${got}" -ne 2 ]]; then
        echo "regress exited ${got} against a 10x baseline," \
             "expected 2"
        exit 1
    fi
    echo "regress gate bites (exit 2 on doctored baseline)"
fi

echo "== store: fig13 sweep ingest + salam-query list/diff"
cmake --build "${perf_dir}" -j "${jobs}" --target fig13_gemm_pareto
"${perf_dir}/bench/fig13_gemm_pareto" --sweep-threads 4 \
    --fu-limits 16 --store-out "${smoke_dir}/store_a" \
    >"${smoke_dir}/store_a.out"
"${perf_dir}/bench/fig13_gemm_pareto" --sweep-threads 4 \
    --fu-limits 64 --store-out "${smoke_dir}/store_b" \
    >"${smoke_dir}/store_b.out"
"${salam_query}" list "${smoke_dir}/store_a" \
    >"${smoke_dir}/store_list.out"
grep -q "fig13_gemm_pareto" "${smoke_dir}/store_list.out"
"${salam_query}" diff "${smoke_dir}/store_a" \
    "${smoke_dir}/store_b" --json \
    >"${smoke_dir}/store_diff.json"
python3 - "${smoke_dir}/store_diff.json" <<'PYEOF'
import json, sys
doc = json.load(open(sys.argv[1]))
# 5 ports points per FU slice, paired point-by-point.
assert doc["paired"] == 5, f"expected 5 paired rows: {doc['paired']}"
assert doc["only_in_a"] == 0 and doc["only_in_b"] == 0, \
    "sweeps of equal shape left unpaired rows"
for row in doc["rows"]:
    assert row["kernel"] == "gemm", row
    for field in ("cycles", "stall_cycles"):
        assert field in row["fields"], \
            f"point {row['point']}: no {field} delta in diff"
changed = [r["point"] for r in doc["rows"] if r["changed"]]
assert changed, "16 vs 64 FUs produced identical results everywhere"
print(f"store diff ok: 5 paired points, "
      f"cycle/stall deltas at points {changed}")
PYEOF

echo "== fast path: fig13 slice, full vs --sim-mode fast bit-identical"
# Same slice in both sim modes; the diff must pair every point and
# report ZERO changes — the trace-replay fast path's correctness
# contract (wall-clock fields are ignored by diff by convention).
"${perf_dir}/bench/fig13_gemm_pareto" --sweep-threads 4 \
    --fu-limits 8 --sim-mode full \
    --store-out "${smoke_dir}/store_fastgate_full" \
    >"${smoke_dir}/store_fastgate_full.out"
"${perf_dir}/bench/fig13_gemm_pareto" --sweep-threads 4 \
    --fu-limits 8 --sim-mode fast \
    --store-out "${smoke_dir}/store_fastgate_fast" \
    >"${smoke_dir}/store_fastgate_fast.out"
# The sweep CSVs themselves must match too (modulo the wall line).
diff <(grep -v wall "${smoke_dir}/store_fastgate_full.out") \
     <(grep -v wall "${smoke_dir}/store_fastgate_fast.out")
"${salam_query}" diff "${smoke_dir}/store_fastgate_full" \
    "${smoke_dir}/store_fastgate_fast" --json \
    >"${smoke_dir}/store_fastgate_diff.json"
python3 - "${smoke_dir}/store_fastgate_diff.json" <<'PYEOF'
import json, sys
doc = json.load(open(sys.argv[1]))
assert doc["paired"] == 5, f"expected 5 paired rows: {doc['paired']}"
assert doc["only_in_a"] == 0 and doc["only_in_b"] == 0, \
    "fast store did not pair with the full store"
changed = [r["point"] for r in doc["rows"] if r["changed"]]
assert not changed, \
    f"fast path diverged from full simulation at points {changed}"
print("fast-path gate ok: 5 paired points, 0 changed")
PYEOF

echo "== interconnect: crossbar-vs-bus A/B, contention, auto fallback"
ic_dir="${smoke_dir}/interconnect"
mkdir -p "${ic_dir}"
cmake --build "${perf_dir}" -j "${jobs}" \
    --target fig10_timing_validation fig16_multi_accelerator \
    interconnect_sweep

# A/B gate: an AXI-like bus wide enough for every access (64B beats)
# with unlimited credits degrades to pure handshake timing, so fig10
# must be cycle-identical to the crossbar — byte-identical output.
"${perf_dir}/bench/fig10_timing_validation" --interconnect xbar \
    >"${ic_dir}/fig10_xbar.out"
"${perf_dir}/bench/fig10_timing_validation" --interconnect axi \
    --bus-width 64 >"${ic_dir}/fig10_axi.out"
if ! diff "${ic_dir}/fig10_xbar.out" "${ic_dir}/fig10_axi.out"; then
    echo "wide AXI bus is not cycle-identical to the crossbar"
    exit 1
fi
echo "fig10 A/B ok: wide bus == crossbar, byte-identical"

# Contention smoke on fig16's multi-accelerator cluster: a 1-credit
# fabric must measurably stretch the DMA-heavy baseline scenario,
# and both runs must land as queryable store records.
"${perf_dir}/bench/fig16_multi_accelerator" --interconnect xbar \
    --store-out "${ic_dir}/fig16_store" >"${ic_dir}/fig16_xbar.out"
"${perf_dir}/bench/fig16_multi_accelerator" --interconnect axi \
    --bus-width 4 --ic-credits 1 \
    --store-out "${ic_dir}/fig16_store" >"${ic_dir}/fig16_axi.out"
"${salam_query}" list "${ic_dir}/fig16_store" \
    >"${ic_dir}/fig16_list.out"
if [[ "$(grep -c "fig16-contention" "${ic_dir}/fig16_list.out")" \
        -ne 2 ]]; then
    echo "expected 2 fig16-contention store records:"
    cat "${ic_dir}/fig16_list.out"
    exit 1
fi
python3 - "${ic_dir}" <<'PYEOF'
import re, sys
d = sys.argv[1]

def summary(tag):
    for line in open(f"{d}/fig16_{tag}.out"):
        m = re.match(r"fig16-summary .*private=(\d+)", line)
        if m:
            return int(m.group(1))
    raise AssertionError(f"no fig16-summary line in {tag} run")

xbar = summary("xbar")
axi = summary("axi")
assert axi >= 1.05 * xbar, (
    f"narrow 1-credit bus shows no contention: {axi} vs {xbar}")
print(f"fig16 contention ok: narrow/low-credit bus "
      f"{axi / xbar:.2f}x the crossbar baseline")
PYEOF

# Sweeping an interconnect axis under --sim-mode auto must fall back
# to full simulation on every fabric point (the trace replay models
# a private scratchpad only) and produce bit-identical results.
"${perf_dir}/bench/interconnect_sweep" --skip-cluster-curve \
    --sim-mode full --store-out "${ic_dir}/ic_full" \
    >"${ic_dir}/ic_full.out"
"${perf_dir}/bench/interconnect_sweep" --skip-cluster-curve \
    --sim-mode auto --store-out "${ic_dir}/ic_auto" \
    >"${ic_dir}/ic_auto.out"
grep -q "full-fallback" "${ic_dir}/ic_auto.out"
"${salam_query}" diff "${ic_dir}/ic_auto" "${ic_dir}/ic_full" \
    --json >"${ic_dir}/ic_diff.json"
python3 - "${ic_dir}/ic_diff.json" <<'PYEOF'
import json, sys
doc = json.load(open(sys.argv[1]))
# 8 grid points + the direct baseline.
assert doc["paired"] == 9, f"expected 9 paired rows: {doc['paired']}"
assert doc["only_in_a"] == 0 and doc["only_in_b"] == 0, \
    "auto store did not pair with the full store"
changed = [r["point"] for r in doc["rows"] if r["changed"]]
assert not changed, \
    f"auto mode diverged from full simulation at points {changed}"
print("interconnect auto-fallback gate ok: 9 paired points, "
      "0 changed")
PYEOF

echo "== robustness: kill-and-resume, timeouts, retry records"
rb_dir="${smoke_dir}/robust"
mkdir -p "${rb_dir}"
# Uninterrupted baseline over the full 20-point fig13 grid.
"${perf_dir}/bench/fig13_gemm_pareto" --sweep-threads 4 \
    --store-out "${rb_dir}/baseline" \
    --dump-out "${rb_dir}/baseline_dump.json" \
    >"${rb_dir}/baseline.out" 2>&1

# SIGTERM a 4-thread sweep mid-run: the pool must drain gracefully
# and exit 75 (EX_TEMPFAIL, "interrupted — resume me"). A machine
# fast enough to finish the sweep before the signal lands exits 0;
# either way the resume pass below must converge on a clean store.
"${perf_dir}/bench/fig13_gemm_pareto" --sweep-threads 4 \
    --store-out "${rb_dir}/chaos" \
    --dump-out "${rb_dir}/chaos_dump.json" \
    >"${rb_dir}/chaos.out" 2>&1 &
chaos_pid=$!
sleep 0.5
kill -TERM "${chaos_pid}" 2>/dev/null || true
got=0
wait "${chaos_pid}" || got=$?
if [[ "${got}" -ne 75 && "${got}" -ne 0 ]]; then
    echo "interrupted sweep exited ${got}, expected 75 (or 0 if" \
         "it finished first)"
    cat "${rb_dir}/chaos.out"
    exit 1
fi
echo "interrupted sweep exit ${got}"

# Resume from the store until the sweep completes (bounded).
for pass in 1 2 3 4 5; do
    got=0
    "${perf_dir}/bench/fig13_gemm_pareto" --sweep-threads 4 \
        --store-out "${rb_dir}/chaos" --resume "${rb_dir}/chaos" \
        --dump-out "${rb_dir}/chaos_dump.json" \
        >"${rb_dir}/resume.${pass}.out" 2>&1 || got=$?
    [[ "${got}" -eq 0 ]] && break
    if [[ "${got}" -ne 75 ]]; then
        echo "resume pass ${pass} exited ${got}"
        cat "${rb_dir}/resume.${pass}.out"
        exit 1
    fi
done
if [[ "${got}" -ne 0 ]]; then
    echo "resume did not converge after ${pass} passes"
    exit 1
fi

# The merged kill+resume store must be equivalent to the
# uninterrupted baseline: every point paired, nothing changed.
"${salam_query}" diff "${rb_dir}/baseline" "${rb_dir}/chaos" \
    --kind run --outcome ok --json >"${rb_dir}/diff.json"
python3 - "${rb_dir}/diff.json" <<'PYEOF'
import json, sys
doc = json.load(open(sys.argv[1]))
assert doc["paired"] == 20, f"expected 20 paired: {doc['paired']}"
assert doc["only_in_a"] == 0 and doc["only_in_b"] == 0, \
    f"unpaired rows: {doc['only_in_a']}/{doc['only_in_b']}"
changed = [r["point"] for r in doc["rows"] if r["changed"]]
assert not changed, f"kill/resume changed results at {changed}"
print("kill-and-resume ok: 20/20 points paired, nothing changed")
PYEOF

# Deliberately-starved deadline: every point must classify as
# "timeout" without stalling the pool or aborting the process, and
# --point-retries must leave one kind="attempt" record per attempt
# for salam-query attempts to aggregate.
got=0
timeout 120 "${perf_dir}/bench/fig13_gemm_pareto" --sweep-threads 4 \
    --point-timeout 0.05 --point-retries 1 \
    --store-out "${rb_dir}/timeouts" \
    --dump-out "${rb_dir}/timeout_dump.json" \
    >"${rb_dir}/timeouts.out" 2>&1 || got=$?
if [[ "${got}" -ne 0 ]]; then
    echo "timeout sweep exited ${got} (hang or abort?)"
    cat "${rb_dir}/timeouts.out"
    exit 1
fi
"${salam_query}" list "${rb_dir}/timeouts" --kind sweep_point \
    --json >"${rb_dir}/timeout_points.json"
"${salam_query}" attempts "${rb_dir}/timeouts" --json \
    >"${rb_dir}/timeout_attempts.json"
python3 - "${rb_dir}" <<'PYEOF'
import json, sys
d = sys.argv[1]
points = json.load(open(f"{d}/timeout_points.json"))
assert len(points) == 20, f"{len(points)} sweep_point records"
bad = [p["point"] for p in points if p["outcome"] != "timeout"]
assert not bad, f"points not classified timeout: {bad}"
attempts = json.load(open(f"{d}/timeout_attempts.json"))
assert len(attempts) == 40, \
    f"expected 2 attempts x 20 points, got {len(attempts)}"
print("timeout classification ok: 20 timeouts, 40 attempt records")
PYEOF

echo "== robustness: chaos harness (seeded kill/resume campaign)"
"${repo_root}/scripts/chaos_sweep.sh" --build-dir "${perf_dir}" \
    --seed 11 --kills 2

echo "== host telemetry: sweep artifacts + overhead gate"
cmake --build "${perf_dir}" -j "${jobs}" \
    --target fig13_gemm_pareto table4_simulation_time
"${perf_dir}/bench/fig13_gemm_pareto" --sweep-threads 4 \
    --host-telemetry-out "${smoke_dir}/fig13_host.json" \
    >"${smoke_dir}/fig13_host.out"
python3 - "${smoke_dir}/fig13_host.json" <<'PYEOF'
import json, sys
path = sys.argv[1]

host = json.load(open(path))["host"]
assert host["schema"] == "sweep_host_telemetry_v1", host["schema"]
assert host["threads"] == 4, host["threads"]
workers = host["workers"]
assert len(workers) == 4, f"expected 4 worker rows, got {len(workers)}"
assert sum(w["points"] for w in workers) == len(host["points"]), \
    "worker point counts do not cover every sweep point"
for key in ("effective_speedup", "serial_share", "lock_wait_share"):
    assert key in host, f"missing scaling metric '{key}'"
tel = host["telemetry"]
assert tel["phases"]["engine_schedule"]["count"] > 0, \
    "no engine events attributed"
assert tel["phases"]["memory_model"]["count"] > 0, \
    "no memory events attributed"

trace = json.load(open(path + ".trace.json"))
events = trace["traceEvents"]
worker_tracks = [
    e for e in events
    if e.get("ph") == "M" and e.get("name") == "thread_name"
    and str(e.get("args", {}).get("name", "")).startswith("worker")]
assert worker_tracks, "no per-worker host-time tracks in the trace"
host_slices = [e for e in events
               if e.get("ph") == "X" and e.get("pid") == 1]
assert len(host_slices) >= len(host["points"]), \
    "fewer host slices than sweep points"
sim_records = [e for e in events
               if e.get("ph") in ("X", "i", "C")
               and e.get("pid") == 0]
assert sim_records, "no simulated-time records beside host tracks"
print(f"host telemetry ok: speedup "
      f"{host['effective_speedup']:.2f}x, serial share "
      f"{host['serial_share']:.2f}, lock-wait share "
      f"{host['lock_wait_share']:.4f}, {len(host_slices)} host "
      f"slices, {len(sim_records)} sim records")
PYEOF

# Telemetry must be near-free: median-of-3 single-run GEMM with
# --host-telemetry within 3% of the run without it (interleaved so
# host drift hits both legs equally).
for n in 1 2 3; do
    "${perf_dir}/bench/table4_simulation_time" --gemm-only \
        --no-sweep --simrate-out "${smoke_dir}/oh_off.${n}.json" \
        >/dev/null
    "${perf_dir}/bench/table4_simulation_time" --gemm-only \
        --no-sweep --host-telemetry \
        --simrate-out "${smoke_dir}/oh_on.${n}.json" >/dev/null
done
python3 - "${smoke_dir}" <<'PYEOF'
import json, statistics, sys
d = sys.argv[1]

def median_gemm_seconds(tag):
    vals = []
    for n in (1, 2, 3):
        doc = json.load(open(f"{d}/{tag}.{n}.json"))
        gemm = [k for k in doc["kernels"] if k["kernel"] == "gemm"]
        assert gemm, f"{tag}.{n}: no gemm entry"
        vals.append(gemm[0]["wall_seconds"])
    return statistics.median(vals)

off = median_gemm_seconds("oh_off")
on = median_gemm_seconds("oh_on")
ratio = on / off
print(f"telemetry overhead: off {off*1e3:.1f} ms, "
      f"on {on*1e3:.1f} ms ({ratio:.3f}x)")
assert ratio <= 1.03, \
    f"telemetry overhead {ratio:.3f}x exceeds the 3% budget"
PYEOF

echo "== strict: -Wall -Wextra -Werror build (${strict_dir})"
cmake -S "${repo_root}" -B "${strict_dir}" \
    -DCMAKE_CXX_FLAGS="-Wall -Wextra -Werror" >/dev/null
cmake --build "${strict_dir}" -j "${jobs}"

echo "== all checks passed"

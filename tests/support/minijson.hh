/**
 * @file
 * Test-support alias for the JSON reader.
 *
 * The parser used to live here, test-only; the run-results store made
 * JSON reading a simulator capability, so the implementation moved to
 * src/obs/json_reader.hh and this header just re-exports it under the
 * historical salam::testsupport names.
 */

#ifndef SALAM_TESTS_SUPPORT_MINIJSON_HH
#define SALAM_TESTS_SUPPORT_MINIJSON_HH

#include "obs/json_reader.hh"

namespace salam::testsupport
{

using JsonValue = obs::JsonValue;
using JsonParser = obs::JsonReader;
using obs::parseJson;

} // namespace salam::testsupport

#endif // SALAM_TESTS_SUPPORT_MINIJSON_HH

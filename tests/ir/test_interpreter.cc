/** @file Unit tests for the functional interpreter. */

#include <gtest/gtest.h>

#include "ir/interpreter.hh"
#include "ir/ir_builder.hh"
#include "test_helpers.hh"

using namespace salam::ir;

TEST(FlatMemory, ReadWriteRoundTrip)
{
    FlatMemory mem;
    mem.writeI32(0x1000, -42);
    EXPECT_EQ(mem.readI32(0x1000), -42);
    mem.writeF64(0x2000, 3.25);
    EXPECT_DOUBLE_EQ(mem.readF64(0x2000), 3.25);
    // Untouched memory reads zero.
    EXPECT_EQ(mem.readI64(0x9000), 0);
}

TEST(FlatMemory, CrossPageAccess)
{
    FlatMemory mem;
    // Write an 8-byte value straddling a 4 KiB page boundary.
    mem.writeI64(4092, 0x1122334455667788LL);
    EXPECT_EQ(mem.readI64(4092), 0x1122334455667788LL);
    EXPECT_EQ(mem.readI32(4092), 0x55667788);
}

TEST(Interpreter, VecAddComputesCorrectly)
{
    Module mod("m");
    IRBuilder b(mod);
    Function *fn = salam::test::buildVecAdd(b, 16);

    FlatMemory mem;
    const std::uint64_t a = 0x1000, bb = 0x2000, c = 0x3000;
    for (int i = 0; i < 16; ++i) {
        mem.writeI32(a + 4u * static_cast<unsigned>(i), i);
        mem.writeI32(bb + 4u * static_cast<unsigned>(i), 100 - i);
    }

    Interpreter interp(mem);
    interp.run(*fn, {RuntimeValue::fromPointer(a),
                     RuntimeValue::fromPointer(bb),
                     RuntimeValue::fromPointer(c)});
    for (int i = 0; i < 16; ++i)
        EXPECT_EQ(mem.readI32(c + 4u * static_cast<unsigned>(i)), 100);
}

TEST(Interpreter, ReturnsAccumulator)
{
    Module mod("m");
    IRBuilder b(mod);
    Function *fn = salam::test::buildSumSquares(b, 10);
    FlatMemory mem;
    Interpreter interp(mem);
    RuntimeValue r = interp.run(*fn, {});
    // sum k^2, k = 0..9 = 285
    EXPECT_EQ(r.asSInt(mod.context().i64()), 285);
}

TEST(Interpreter, PhiReadsAreSimultaneous)
{
    // Classic swap loop: (x, y) <- (y, x) twice returns originals.
    Module mod("m");
    IRBuilder b(mod);
    Context &ctx = b.context();
    Function *fn = b.createFunction("swap2", ctx.i64());
    BasicBlock *entry = b.createBlock("entry");
    BasicBlock *loop = b.createBlock("loop");
    BasicBlock *exit = b.createBlock("exit");

    b.setInsertPoint(entry);
    b.br(loop);

    b.setInsertPoint(loop);
    PhiInst *k = b.phi(ctx.i64(), "k");
    PhiInst *x = b.phi(ctx.i64(), "x");
    PhiInst *y = b.phi(ctx.i64(), "y");
    Value *k_next = b.add(k, b.constI64(1), "k.next");
    Value *cond = b.icmp(Predicate::SLT, k_next, b.constI64(2),
                         "cond");
    b.condBr(cond, loop, exit);
    k->addIncoming(b.constI64(0), entry);
    k->addIncoming(k_next, loop);
    x->addIncoming(b.constI64(7), entry);
    x->addIncoming(y, loop); // swap
    y->addIncoming(b.constI64(9), entry);
    y->addIncoming(x, loop); // swap

    b.setInsertPoint(exit);
    // Return x * 10 + y.
    Value *r =
        b.add(b.mul(x, b.constI64(10), "x10"), y, "combined");
    b.ret(r);

    FlatMemory mem;
    Interpreter interp(mem);
    RuntimeValue rv = interp.run(*fn, {});
    // After the loop exits (2 iterations executed), the exit sees the
    // values from the start of the last iteration: x=9, y=7 -> 97.
    EXPECT_EQ(rv.asSInt(ctx.i64()), 97);
}

TEST(Interpreter, DataDependentBranch)
{
    // if (v > 10) out = v << 1 else out = v
    Module mod("m");
    IRBuilder b(mod);
    Context &ctx = b.context();
    Function *fn = b.createFunction("cond_shift", ctx.i64());
    Argument *v = fn->addArgument(ctx.i64(), "v");
    BasicBlock *entry = b.createBlock("entry");
    BasicBlock *then = b.createBlock("then");
    BasicBlock *merge = b.createBlock("merge");

    b.setInsertPoint(entry);
    Value *cond =
        b.icmp(Predicate::SGT, v, b.constI64(10), "cond");
    b.condBr(cond, then, merge);

    b.setInsertPoint(then);
    Value *shifted = b.shl(v, b.constI64(1), "shifted");
    b.br(merge);

    b.setInsertPoint(merge);
    PhiInst *out = b.phi(ctx.i64(), "out");
    out->addIncoming(v, entry);
    out->addIncoming(shifted, then);
    b.ret(out);

    FlatMemory mem;
    Interpreter interp(mem);
    EXPECT_EQ(interp.run(*fn, {RuntimeValue::fromInt(ctx.i64(), 5)})
                  .asSInt(ctx.i64()),
              5);
    EXPECT_EQ(interp.run(*fn, {RuntimeValue::fromInt(ctx.i64(), 20)})
                  .asSInt(ctx.i64()),
              40);
}

TEST(Interpreter, ObserverSeesLoadsAndStores)
{
    Module mod("m");
    IRBuilder b(mod);
    Function *fn = salam::test::buildVecAdd(b, 4);

    FlatMemory mem;
    Interpreter interp(mem);
    int loads = 0, stores = 0;
    std::uint64_t last_store_addr = 0;
    interp.setObserver([&](const ExecRecord &rec) {
        if (rec.inst->opcode() == Opcode::Load)
            ++loads;
        if (rec.inst->opcode() == Opcode::Store) {
            ++stores;
            last_store_addr = rec.memAddr;
        }
    });
    interp.run(*fn, {RuntimeValue::fromPointer(0x100),
                     RuntimeValue::fromPointer(0x200),
                     RuntimeValue::fromPointer(0x300)});
    EXPECT_EQ(loads, 8);
    EXPECT_EQ(stores, 4);
    EXPECT_EQ(last_store_addr, 0x300u + 3u * 4u);
}

TEST(Interpreter, StepLimitIsFatal)
{
    // Infinite loop: br self.
    Module mod("m");
    IRBuilder b(mod);
    Context &ctx = b.context();
    Function *fn = b.createFunction("spin", ctx.voidType());
    BasicBlock *entry = b.createBlock("entry");
    b.setInsertPoint(entry);
    b.br(entry);

    FlatMemory mem;
    Interpreter interp(mem);
    interp.setStepLimit(1000);
    EXPECT_EXIT(interp.run(*fn, {}), ::testing::ExitedWithCode(1),
                "step limit");
}

TEST(Interpreter, WrongArgCountIsFatal)
{
    Module mod("m");
    IRBuilder b(mod);
    Function *fn = salam::test::buildVecAdd(b, 4);
    FlatMemory mem;
    Interpreter interp(mem);
    EXPECT_EXIT(interp.run(*fn, {}), ::testing::ExitedWithCode(1),
                "expects");
}

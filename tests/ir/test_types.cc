/** @file Unit tests for the IR type system. */

#include <gtest/gtest.h>

#include "ir/context.hh"

using namespace salam::ir;

TEST(Types, InterningGivesPointerIdentity)
{
    Context ctx;
    EXPECT_EQ(ctx.i32(), ctx.intType(32));
    EXPECT_EQ(ctx.pointerTo(ctx.i32()), ctx.pointerTo(ctx.i32()));
    EXPECT_EQ(ctx.arrayOf(ctx.doubleType(), 8),
              ctx.arrayOf(ctx.doubleType(), 8));
    EXPECT_NE(ctx.arrayOf(ctx.doubleType(), 8),
              ctx.arrayOf(ctx.doubleType(), 9));
    EXPECT_NE(ctx.i32(), ctx.i64());
}

TEST(Types, StoreSizes)
{
    Context ctx;
    EXPECT_EQ(ctx.i1()->storeSize(), 1u);
    EXPECT_EQ(ctx.i8()->storeSize(), 1u);
    EXPECT_EQ(ctx.i16()->storeSize(), 2u);
    EXPECT_EQ(ctx.i32()->storeSize(), 4u);
    EXPECT_EQ(ctx.i64()->storeSize(), 8u);
    EXPECT_EQ(ctx.floatType()->storeSize(), 4u);
    EXPECT_EQ(ctx.doubleType()->storeSize(), 8u);
    EXPECT_EQ(ctx.pointerTo(ctx.i8())->storeSize(), 8u);
    EXPECT_EQ(ctx.arrayOf(ctx.i32(), 10)->storeSize(), 40u);
    EXPECT_EQ(ctx.arrayOf(ctx.arrayOf(ctx.doubleType(), 4), 3)
                  ->storeSize(),
              96u);
}

TEST(Types, BitWidths)
{
    Context ctx;
    EXPECT_EQ(ctx.i1()->bitWidth(), 1u);
    EXPECT_EQ(ctx.intType(17)->bitWidth(), 17u);
    EXPECT_EQ(ctx.floatType()->bitWidth(), 32u);
    EXPECT_EQ(ctx.doubleType()->bitWidth(), 64u);
    EXPECT_EQ(ctx.pointerTo(ctx.i8())->bitWidth(), 64u);
}

TEST(Types, ToStringMatchesLlvmSyntax)
{
    Context ctx;
    EXPECT_EQ(ctx.i32()->toString(), "i32");
    EXPECT_EQ(ctx.voidType()->toString(), "void");
    EXPECT_EQ(ctx.pointerTo(ctx.doubleType())->toString(), "double*");
    EXPECT_EQ(ctx.arrayOf(ctx.floatType(), 64)->toString(),
              "[64 x float]");
    EXPECT_EQ(ctx.pointerTo(ctx.arrayOf(ctx.i8(), 2))->toString(),
              "[2 x i8]*");
}

TEST(Types, PredicateHelpers)
{
    Context ctx;
    EXPECT_TRUE(ctx.doubleType()->isFloatingPoint());
    EXPECT_TRUE(ctx.floatType()->isFloatingPoint());
    EXPECT_FALSE(ctx.i32()->isFloatingPoint());
    EXPECT_TRUE(ctx.pointerTo(ctx.i32())->isPointer());
    EXPECT_EQ(ctx.pointerTo(ctx.i32())->pointee(), ctx.i32());
    EXPECT_EQ(ctx.arrayOf(ctx.i32(), 4)->arrayElement(), ctx.i32());
    EXPECT_EQ(ctx.arrayOf(ctx.i32(), 4)->arrayCount(), 4u);
}

TEST(Types, InvalidIntegerWidthIsFatal)
{
    Context ctx;
    EXPECT_EXIT(ctx.intType(0), ::testing::ExitedWithCode(1),
                "unsupported integer width");
    EXPECT_EXIT(ctx.intType(65), ::testing::ExitedWithCode(1),
                "unsupported integer width");
}

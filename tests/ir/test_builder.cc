/** @file Unit tests for IRBuilder construction. */

#include <gtest/gtest.h>

#include "ir/ir_builder.hh"
#include "ir/verifier.hh"
#include "test_helpers.hh"

using namespace salam::ir;

TEST(Builder, VecAddStructure)
{
    Module mod("m");
    IRBuilder b(mod);
    Function *fn = salam::test::buildVecAdd(b);

    EXPECT_EQ(fn->numArguments(), 3u);
    EXPECT_EQ(fn->numBlocks(), 3u);
    EXPECT_EQ(fn->entry()->name(), "entry");

    BasicBlock *loop = fn->findBlock("loop");
    ASSERT_NE(loop, nullptr);
    EXPECT_EQ(loop->phis().size(), 1u);
    EXPECT_NE(loop->terminator(), nullptr);
    EXPECT_TRUE(loop->terminator()->isTerminator());

    auto problems = Verifier::verify(*fn);
    EXPECT_TRUE(problems.empty())
        << (problems.empty() ? "" : problems.front());
}

TEST(Builder, AutoNamingIsUnique)
{
    Module mod("m");
    IRBuilder b(mod);
    Context &ctx = b.context();
    Function *fn = b.createFunction("f", ctx.voidType());
    BasicBlock *entry = b.createBlock("entry");
    b.setInsertPoint(entry);
    Value *x = b.add(b.constI64(1), b.constI64(2));
    Value *y = b.add(x, x);
    EXPECT_NE(x->name(), y->name());
    b.ret();
    (void)fn;
}

TEST(Builder, ConstantsAreInterned)
{
    Module mod("m");
    IRBuilder b(mod);
    EXPECT_EQ(b.constI64(42), b.constI64(42));
    EXPECT_NE(b.constI64(42), b.constI64(43));
    EXPECT_EQ(b.constDouble(1.5), b.constDouble(1.5));
    // i32 and i64 constants of the same value are distinct.
    EXPECT_NE(static_cast<Value *>(b.constI32(7)),
              static_cast<Value *>(b.constI64(7)));
}

TEST(Builder, TypeMismatchPanics)
{
    Module mod("m");
    IRBuilder b(mod);
    Context &ctx = b.context();
    b.createFunction("f", ctx.voidType());
    BasicBlock *entry = b.createBlock("entry");
    b.setInsertPoint(entry);
    EXPECT_DEATH(b.add(b.constI64(1), b.constI32(1)),
                 "operand type mismatch");
}

TEST(Builder, AppendAfterTerminatorPanics)
{
    Module mod("m");
    IRBuilder b(mod);
    Context &ctx = b.context();
    b.createFunction("f", ctx.voidType());
    BasicBlock *entry = b.createBlock("entry");
    b.setInsertPoint(entry);
    b.ret();
    EXPECT_DEATH(b.add(b.constI64(1), b.constI64(1)),
                 "already-terminated");
}

TEST(Builder, DuplicateBlockNamesGetSuffixed)
{
    Module mod("m");
    IRBuilder b(mod);
    Context &ctx = b.context();
    b.createFunction("f", ctx.voidType());
    BasicBlock *b1 = b.createBlock("loop");
    BasicBlock *b2 = b.createBlock("loop");
    EXPECT_EQ(b1->name(), "loop");
    EXPECT_NE(b2->name(), "loop");
}

TEST(Builder, GepResultTypes)
{
    Module mod("m");
    IRBuilder b(mod);
    Context &ctx = b.context();
    Function *fn = b.createFunction("f", ctx.voidType());
    const Type *arr = ctx.arrayOf(ctx.doubleType(), 8);
    Argument *base = fn->addArgument(ctx.pointerTo(arr), "base");
    BasicBlock *entry = b.createBlock("entry");
    b.setInsertPoint(entry);

    // &base[1] over the array type: pointer to the array.
    Value *p0 = b.gep(arr, base, b.constI64(1));
    EXPECT_EQ(p0->type(), ctx.pointerTo(arr));

    // &base[0][3]: steps into the array, pointer to double.
    Value *p1 = b.gep(arr, base, {b.constI64(0), b.constI64(3)});
    EXPECT_EQ(p1->type(), ctx.pointerTo(ctx.doubleType()));
    b.ret();
}

TEST(Builder, SumSquaresVerifies)
{
    Module mod("m");
    IRBuilder b(mod);
    Function *fn = salam::test::buildSumSquares(b);
    auto problems = Verifier::verify(*fn);
    EXPECT_TRUE(problems.empty())
        << (problems.empty() ? "" : problems.front());
}

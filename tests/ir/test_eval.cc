/** @file Unit tests for RuntimeValue and opcode evaluation. */

#include <gtest/gtest.h>

#include "ir/context.hh"
#include "ir/eval.hh"
#include "ir/ir_builder.hh"

using namespace salam::ir;

namespace
{

class EvalTest : public ::testing::Test
{
  protected:
    Context ctx;

    RuntimeValue
    i64v(std::int64_t v)
    {
        return RuntimeValue::fromInt(
            ctx.i64(), static_cast<std::uint64_t>(v));
    }

    RuntimeValue
    i8v(std::int64_t v)
    {
        return RuntimeValue::fromInt(
            ctx.i8(), static_cast<std::uint64_t>(v));
    }
};

} // namespace

TEST_F(EvalTest, IntegerArithmeticWraps)
{
    auto r = evalBinary(Opcode::Add, ctx.i8(), i8v(200), i8v(100));
    EXPECT_EQ(r.asUInt(ctx.i8()), (200u + 100u) & 0xFF);

    r = evalBinary(Opcode::Mul, ctx.i8(), i8v(16), i8v(16));
    EXPECT_EQ(r.asUInt(ctx.i8()), 0u);
}

TEST_F(EvalTest, SignedDivisionAndRemainder)
{
    auto r = evalBinary(Opcode::SDiv, ctx.i64(), i64v(-7), i64v(2));
    EXPECT_EQ(r.asSInt(ctx.i64()), -3);
    r = evalBinary(Opcode::SRem, ctx.i64(), i64v(-7), i64v(2));
    EXPECT_EQ(r.asSInt(ctx.i64()), -1);
    r = evalBinary(Opcode::UDiv, ctx.i64(), i64v(7), i64v(2));
    EXPECT_EQ(r.asUInt(ctx.i64()), 3u);
}

TEST_F(EvalTest, DivisionByZeroIsFatal)
{
    EXPECT_EXIT(evalBinary(Opcode::SDiv, ctx.i64(), i64v(1), i64v(0)),
                ::testing::ExitedWithCode(1), "by zero");
}

TEST_F(EvalTest, Shifts)
{
    auto r = evalBinary(Opcode::Shl, ctx.i8(), i8v(1), i8v(7));
    EXPECT_EQ(r.asUInt(ctx.i8()), 0x80u);
    // Shift >= width yields 0 (we define the behaviour; LLVM is UB).
    r = evalBinary(Opcode::Shl, ctx.i8(), i8v(1), i8v(8));
    EXPECT_EQ(r.asUInt(ctx.i8()), 0u);
    r = evalBinary(Opcode::AShr, ctx.i8(), i8v(-128), i8v(2));
    EXPECT_EQ(r.asSInt(ctx.i8()), -32);
    r = evalBinary(Opcode::LShr, ctx.i8(), i8v(-128), i8v(2));
    EXPECT_EQ(r.asUInt(ctx.i8()), 0x20u);
}

TEST_F(EvalTest, FloatArithmeticRoundsToFloat)
{
    RuntimeValue a = RuntimeValue::fromFloat(1.0f);
    RuntimeValue b = RuntimeValue::fromFloat(1e-10f);
    auto r = evalBinary(Opcode::FAdd, ctx.floatType(), a, b);
    // In float precision 1 + 1e-10 == 1.
    EXPECT_EQ(r.asFloat(), 1.0f);

    RuntimeValue da = RuntimeValue::fromDouble(1.0);
    RuntimeValue db = RuntimeValue::fromDouble(1e-10);
    r = evalBinary(Opcode::FAdd, ctx.doubleType(), da, db);
    EXPECT_GT(r.asDouble(), 1.0);
}

TEST_F(EvalTest, Comparisons)
{
    auto t = evalCompare(Opcode::ICmp, Predicate::SLT, ctx.i64(),
                         i64v(-1), i64v(1));
    EXPECT_TRUE(t.asBool());
    // Unsigned: -1 is huge.
    t = evalCompare(Opcode::ICmp, Predicate::ULT, ctx.i64(), i64v(-1),
                    i64v(1));
    EXPECT_FALSE(t.asBool());
    t = evalCompare(Opcode::FCmp, Predicate::OGT, ctx.doubleType(),
                    RuntimeValue::fromDouble(2.5),
                    RuntimeValue::fromDouble(2.0));
    EXPECT_TRUE(t.asBool());
}

TEST_F(EvalTest, Casts)
{
    // sext i8 -1 -> i64 -1
    auto r = evalCast(Opcode::SExt, ctx.i8(), ctx.i64(), i8v(-1));
    EXPECT_EQ(r.asSInt(ctx.i64()), -1);
    // zext i8 255 -> i64 255
    r = evalCast(Opcode::ZExt, ctx.i8(), ctx.i64(), i8v(-1));
    EXPECT_EQ(r.asUInt(ctx.i64()), 255u);
    // trunc i64 0x1FF -> i8 0xFF
    r = evalCast(Opcode::Trunc, ctx.i64(), ctx.i8(), i64v(0x1FF));
    EXPECT_EQ(r.asUInt(ctx.i8()), 0xFFu);
    // sitofp
    r = evalCast(Opcode::SIToFP, ctx.i64(), ctx.doubleType(),
                 i64v(-3));
    EXPECT_DOUBLE_EQ(r.asDouble(), -3.0);
    // fptosi truncates toward zero
    r = evalCast(Opcode::FPToSI, ctx.doubleType(), ctx.i64(),
                 RuntimeValue::fromDouble(-2.9));
    EXPECT_EQ(r.asSInt(ctx.i64()), -2);
    // fptrunc then fpext loses double precision
    auto f = evalCast(Opcode::FPTrunc, ctx.doubleType(),
                      ctx.floatType(), RuntimeValue::fromDouble(0.1));
    auto d = evalCast(Opcode::FPExt, ctx.floatType(),
                      ctx.doubleType(), f);
    EXPECT_NE(d.asDouble(), 0.1);
    EXPECT_NEAR(d.asDouble(), 0.1, 1e-7);
}

TEST_F(EvalTest, Intrinsics)
{
    auto r = evalIntrinsic("sqrt", ctx.doubleType(),
                           {RuntimeValue::fromDouble(9.0)});
    EXPECT_DOUBLE_EQ(r.asDouble(), 3.0);
    r = evalIntrinsic("pow", ctx.doubleType(),
                      {RuntimeValue::fromDouble(2.0),
                       RuntimeValue::fromDouble(10.0)});
    EXPECT_DOUBLE_EQ(r.asDouble(), 1024.0);
    EXPECT_EXIT(evalIntrinsic("nope", ctx.doubleType(), {}),
                ::testing::ExitedWithCode(1), "unknown intrinsic");
}

TEST_F(EvalTest, GepOffsets)
{
    Module mod("m");
    IRBuilder b(mod);
    Context &c = b.context();
    Function *fn = b.createFunction("f", c.voidType());
    const Type *arr = c.arrayOf(c.i32(), 4);
    Argument *base = fn->addArgument(c.pointerTo(arr), "base");
    BasicBlock *entry = b.createBlock("entry");
    b.setInsertPoint(entry);

    // getelementptr [4 x i32], ptr, 1, 2 -> 16 + 8 = 24 bytes.
    auto *gep = static_cast<GetElementPtrInst *>(
        b.gep(arr, base, {b.constI64(1), b.constI64(2)}));
    std::vector<RuntimeValue> idx = {
        RuntimeValue::fromInt(c.i64(), 1),
        RuntimeValue::fromInt(c.i64(), 2)};
    EXPECT_EQ(evalGepOffset(*gep, idx), 24);

    // Negative index walks backwards.
    auto *gep2 = static_cast<GetElementPtrInst *>(
        b.gep(c.i64(), base, b.constI64(-3)));
    std::vector<RuntimeValue> idx2 = {RuntimeValue::fromInt(
        c.i64(), static_cast<std::uint64_t>(-3))};
    EXPECT_EQ(evalGepOffset(*gep2, idx2), -24);
    b.ret();
}

/** @file Shared IR construction helpers for tests. */

#ifndef SALAM_TESTS_IR_TEST_HELPERS_HH
#define SALAM_TESTS_IR_TEST_HELPERS_HH

#include <memory>

#include "ir/ir_builder.hh"

namespace salam::test
{

/**
 * Build: void vecadd(i32* a, i32* b, i32* c, i64 n)
 * with a single-block counted loop, c[i] = a[i] + b[i].
 * @p n_const bakes the trip count as a constant when >= 0.
 */
inline ir::Function *
buildVecAdd(ir::IRBuilder &b, std::int64_t n_const = 16)
{
    using namespace salam::ir;
    Context &ctx = b.context();
    Function *fn = b.createFunction("vecadd", ctx.voidType());
    Argument *a = fn->addArgument(ctx.pointerTo(ctx.i32()), "a");
    Argument *bb = fn->addArgument(ctx.pointerTo(ctx.i32()), "b");
    Argument *c = fn->addArgument(ctx.pointerTo(ctx.i32()), "c");

    BasicBlock *entry = b.createBlock("entry");
    BasicBlock *loop = b.createBlock("loop");
    BasicBlock *exit = b.createBlock("exit");

    b.setInsertPoint(entry);
    b.br(loop);

    b.setInsertPoint(loop);
    PhiInst *i = b.phi(ctx.i64(), "i");
    Value *pa = b.gep(ctx.i32(), a, i, "pa");
    Value *pb = b.gep(ctx.i32(), bb, i, "pb");
    Value *va = b.load(pa, "va");
    Value *vb = b.load(pb, "vb");
    Value *sum = b.add(va, vb, "sum");
    Value *pc = b.gep(ctx.i32(), c, i, "pc");
    b.store(sum, pc);
    Value *inext = b.add(i, b.constI64(1), "i.next");
    Value *cond = b.icmp(Predicate::SLT, inext, b.constI64(n_const),
                         "cond");
    b.condBr(cond, loop, exit);
    i->addIncoming(b.constI64(0), entry);
    i->addIncoming(inext, loop);

    b.setInsertPoint(exit);
    b.ret();
    return fn;
}

/**
 * Build: i64 sumsq(i64 n) — returns sum of k*k for k in [0, n),
 * exercising an accumulator phi and a returned value.
 */
inline ir::Function *
buildSumSquares(ir::IRBuilder &b, std::int64_t n = 10)
{
    using namespace salam::ir;
    Context &ctx = b.context();
    Function *fn = b.createFunction("sumsq", ctx.i64());

    BasicBlock *entry = b.createBlock("entry");
    BasicBlock *loop = b.createBlock("loop");
    BasicBlock *exit = b.createBlock("exit");

    b.setInsertPoint(entry);
    b.br(loop);

    b.setInsertPoint(loop);
    PhiInst *k = b.phi(ctx.i64(), "k");
    PhiInst *acc = b.phi(ctx.i64(), "acc");
    Value *sq = b.mul(k, k, "sq");
    Value *acc_next = b.add(acc, sq, "acc.next");
    Value *k_next = b.add(k, b.constI64(1), "k.next");
    Value *cond = b.icmp(Predicate::SLT, k_next, b.constI64(n),
                         "cond");
    b.condBr(cond, loop, exit);
    k->addIncoming(b.constI64(0), entry);
    k->addIncoming(k_next, loop);
    acc->addIncoming(b.constI64(0), entry);
    acc->addIncoming(acc_next, loop);

    b.setInsertPoint(exit);
    b.ret(acc_next);
    return fn;
}

} // namespace salam::test

#endif // SALAM_TESTS_IR_TEST_HELPERS_HH

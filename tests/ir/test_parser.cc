/** @file Print -> parse round-trip and parser diagnostics tests. */

#include <gtest/gtest.h>

#include "ir/interpreter.hh"
#include "ir/parser.hh"
#include "ir/printer.hh"
#include "ir/verifier.hh"
#include "test_helpers.hh"

using namespace salam::ir;

namespace
{

/** Print a module, parse it back, and print again. */
std::string
roundTrip(const Module &mod)
{
    std::string first = Printer::toString(mod);
    auto reparsed = Parser::parseModule(first, mod.name());
    return Printer::toString(*reparsed);
}

} // namespace

TEST(Parser, VecAddRoundTripIsStable)
{
    Module mod("m");
    IRBuilder b(mod);
    salam::test::buildVecAdd(b);
    std::string once = Printer::toString(mod);
    EXPECT_EQ(once, roundTrip(mod));
    // And the reparsed module verifies.
    auto reparsed = Parser::parseModule(once);
    auto problems = Verifier::verify(*reparsed);
    EXPECT_TRUE(problems.empty())
        << (problems.empty() ? "" : problems.front());
}

TEST(Parser, SumSquaresRoundTripPreservesSemantics)
{
    Module mod("m");
    IRBuilder b(mod);
    salam::test::buildSumSquares(b, 12);
    auto reparsed =
        Parser::parseModule(Printer::toString(mod), "m2");
    Function *fn = reparsed->findFunction("sumsq");
    ASSERT_NE(fn, nullptr);
    FlatMemory mem;
    Interpreter interp(mem);
    // sum k^2 for k in [0,12) = 506
    EXPECT_EQ(interp.run(*fn, {}).asSInt(reparsed->context().i64()),
              506);
}

TEST(Parser, FpConstantsRoundTripBitExactly)
{
    Module mod("m");
    IRBuilder b(mod);
    Context &ctx = b.context();
    Function *fn = b.createFunction("fp", ctx.doubleType());
    BasicBlock *entry = b.createBlock("entry");
    b.setInsertPoint(entry);
    Value *v = b.fadd(b.constDouble(0.1), b.constDouble(1e-300),
                      "v");
    b.ret(v);
    (void)fn;

    auto reparsed = Parser::parseModule(Printer::toString(mod));
    FlatMemory mem;
    Interpreter interp(mem);
    double expected = 0.1 + 1e-300;
    EXPECT_EQ(interp.run(*reparsed->findFunction("fp"), {})
                  .asDouble(),
              expected);
}

TEST(Parser, ParsesHandWrittenFunction)
{
    const char *text = R"(
define i64 @double_it(i64 %x) {
entry:
  %r = mul i64 %x, 2
  ret i64 %r
}
)";
    auto mod = Parser::parseModule(text);
    Function *fn = mod->findFunction("double_it");
    ASSERT_NE(fn, nullptr);
    FlatMemory mem;
    Interpreter interp(mem);
    EXPECT_EQ(interp.run(*fn, {RuntimeValue::fromInt(
                                  mod->context().i64(), 21)})
                  .asSInt(mod->context().i64()),
              42);
}

TEST(Parser, ParsesDecimalFpLiterals)
{
    const char *text = R"(
define double @scale(double %x) {
entry:
  %r = fmul double %x, 2.5
  ret double %r
}
)";
    auto mod = Parser::parseModule(text);
    FlatMemory mem;
    Interpreter interp(mem);
    EXPECT_DOUBLE_EQ(interp.run(*mod->findFunction("scale"),
                                {RuntimeValue::fromDouble(4.0)})
                         .asDouble(),
                     10.0);
}

TEST(Parser, ParsesCommentsAndBlankLines)
{
    const char *text = R"(
; leading comment

define void @f() {   ; trailing comment
entry:
  ret void          ; done
}
)";
    auto mod = Parser::parseModule(text);
    EXPECT_NE(mod->findFunction("f"), nullptr);
}

TEST(Parser, MultipleFunctionsInOneModule)
{
    const char *text = R"(
define void @f() {
entry:
  ret void
}
define void @g() {
entry:
  ret void
}
)";
    auto mod = Parser::parseModule(text);
    EXPECT_EQ(mod->numFunctions(), 2u);
}

TEST(Parser, ForwardPhiReferencesResolve)
{
    const char *text = R"(
define i64 @count() {
entry:
  br label %loop
loop:
  %i = phi i64 [ 0, %entry ], [ %i.next, %loop ]
  %i.next = add i64 %i, 1
  %c = icmp slt i64 %i.next, 5
  br i1 %c, label %loop, label %exit
exit:
  ret i64 %i.next
}
)";
    auto mod = Parser::parseModule(text);
    FlatMemory mem;
    Interpreter interp(mem);
    EXPECT_EQ(interp.run(*mod->findFunction("count"), {})
                  .asSInt(mod->context().i64()),
              5);
}

TEST(Parser, ErrorsCarryLineNumbers)
{
    const char *text = R"(
define void @f() {
entry:
  %x = frobnicate i64 1, 2
  ret void
}
)";
    try {
        Parser::parseModule(text);
        FAIL() << "expected ParseError";
    } catch (const ParseError &err) {
        EXPECT_EQ(err.line(), 4u);
        EXPECT_NE(std::string(err.what()).find("frobnicate"),
                  std::string::npos);
    }
}

TEST(Parser, UndefinedValueIsError)
{
    const char *text = R"(
define void @f() {
entry:
  %x = add i64 %ghost, 1
  ret void
}
)";
    EXPECT_THROW(Parser::parseModule(text), ParseError);
}

TEST(Parser, RedefinitionIsError)
{
    const char *text = R"(
define void @f() {
entry:
  %x = add i64 1, 1
  %x = add i64 2, 2
  ret void
}
)";
    EXPECT_THROW(Parser::parseModule(text), ParseError);
}

TEST(Parser, BranchToUnknownBlockIsError)
{
    const char *text = R"(
define void @f() {
entry:
  br label %nowhere
}
)";
    EXPECT_THROW(Parser::parseModule(text), ParseError);
}

TEST(Parser, ArrayAndPointerTypesParse)
{
    const char *text = R"(
define void @f([8 x [4 x double]]* %m, i32* %v) {
entry:
  %p = getelementptr [8 x [4 x double]], [8 x [4 x double]]* %m, i64 0, i64 2, i64 3
  %x = load double, double* %p
  store double %x, double* %p
  ret void
}
)";
    auto mod = Parser::parseModule(text);
    Function *fn = mod->findFunction("f");
    ASSERT_NE(fn, nullptr);
    auto problems = Verifier::verify(*fn);
    EXPECT_TRUE(problems.empty())
        << (problems.empty() ? "" : problems.front());
}

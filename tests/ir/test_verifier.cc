/** @file Unit tests for IR verification and dominance analysis. */

#include <gtest/gtest.h>

#include "ir/ir_builder.hh"
#include "ir/verifier.hh"
#include "test_helpers.hh"

using namespace salam::ir;

namespace
{

bool
mentions(const std::vector<std::string> &problems,
         const std::string &needle)
{
    for (const auto &p : problems) {
        if (p.find(needle) != std::string::npos)
            return true;
    }
    return false;
}

} // namespace

TEST(Verifier, AcceptsWellFormedFunctions)
{
    Module mod("m");
    IRBuilder b(mod);
    salam::test::buildVecAdd(b);
    salam::test::buildSumSquares(b);
    EXPECT_TRUE(Verifier::verify(mod).empty());
}

TEST(Verifier, DetectsMissingTerminator)
{
    Module mod("m");
    IRBuilder b(mod);
    Context &ctx = b.context();
    Function *fn = b.createFunction("f", ctx.voidType());
    BasicBlock *entry = b.createBlock("entry");
    b.setInsertPoint(entry);
    b.add(b.constI64(1), b.constI64(2));
    auto problems = Verifier::verify(*fn);
    EXPECT_TRUE(mentions(problems, "terminator"));
}

TEST(Verifier, DetectsEmptyBlock)
{
    Module mod("m");
    IRBuilder b(mod);
    Context &ctx = b.context();
    Function *fn = b.createFunction("f", ctx.voidType());
    b.createBlock("entry");
    auto problems = Verifier::verify(*fn);
    EXPECT_TRUE(mentions(problems, "empty"));
}

TEST(Verifier, DetectsPhiPredecessorMismatch)
{
    Module mod("m");
    IRBuilder b(mod);
    Context &ctx = b.context();
    Function *fn = b.createFunction("f", ctx.i64());
    BasicBlock *entry = b.createBlock("entry");
    BasicBlock *merge = b.createBlock("merge");
    b.setInsertPoint(entry);
    b.br(merge);
    b.setInsertPoint(merge);
    PhiInst *phi = b.phi(ctx.i64(), "v");
    // Two incoming entries but only one predecessor.
    phi->addIncoming(b.constI64(1), entry);
    phi->addIncoming(b.constI64(2), merge);
    b.ret(phi);
    auto problems = Verifier::verify(*fn);
    EXPECT_FALSE(problems.empty());
}

TEST(Verifier, DetectsUseBeforeDefInBlock)
{
    Module mod("m");
    IRBuilder b(mod);
    Context &ctx = b.context();
    Function *fn = b.createFunction("f", ctx.voidType());
    BasicBlock *entry = b.createBlock("entry");
    b.setInsertPoint(entry);
    Value *x = b.add(b.constI64(1), b.constI64(2), "x");
    Value *y = b.add(x, b.constI64(3), "y");
    b.ret();
    // Swap: make x depend on y (use before def).
    static_cast<Instruction *>(x)->setOperand(0, y);
    auto problems = Verifier::verify(*fn);
    EXPECT_TRUE(mentions(problems, "before definition"));
}

TEST(Verifier, DetectsNonDominatingUseAcrossBlocks)
{
    Module mod("m");
    IRBuilder b(mod);
    Context &ctx = b.context();
    Function *fn = b.createFunction("f", ctx.i64());
    BasicBlock *entry = b.createBlock("entry");
    BasicBlock *left = b.createBlock("left");
    BasicBlock *right = b.createBlock("right");
    BasicBlock *merge = b.createBlock("merge");

    b.setInsertPoint(entry);
    Value *c = b.icmp(Predicate::EQ, b.constI64(0), b.constI64(0),
                      "c");
    b.condBr(c, left, right);

    b.setInsertPoint(left);
    Value *lv = b.add(b.constI64(1), b.constI64(2), "lv");
    b.br(merge);

    b.setInsertPoint(right);
    b.br(merge);

    b.setInsertPoint(merge);
    // Direct use of lv in merge: left does not dominate merge.
    b.ret(lv);

    auto problems = Verifier::verify(*fn);
    EXPECT_TRUE(mentions(problems, "not dominated"));
}

TEST(Verifier, DominatorsOfDiamond)
{
    Module mod("m");
    IRBuilder b(mod);
    Context &ctx = b.context();
    Function *fn = b.createFunction("f", ctx.voidType());
    BasicBlock *entry = b.createBlock("entry");
    BasicBlock *left = b.createBlock("left");
    BasicBlock *right = b.createBlock("right");
    BasicBlock *merge = b.createBlock("merge");

    b.setInsertPoint(entry);
    Value *c = b.icmp(Predicate::EQ, b.constI64(0), b.constI64(0),
                      "c");
    b.condBr(c, left, right);
    b.setInsertPoint(left);
    b.br(merge);
    b.setInsertPoint(right);
    b.br(merge);
    b.setInsertPoint(merge);
    b.ret();

    auto dom = Verifier::dominators(*fn);
    // Block order: entry=0, left=1, right=2, merge=3.
    EXPECT_TRUE(dom[3][0]);  // entry dominates merge
    EXPECT_FALSE(dom[3][1]); // left does not dominate merge
    EXPECT_FALSE(dom[3][2]); // right does not dominate merge
    EXPECT_TRUE(dom[1][0]);  // entry dominates left
    EXPECT_TRUE(dom[2][2]);  // right dominates itself
}

TEST(Verifier, StoreTypeMismatchDetected)
{
    Module mod("m");
    IRBuilder b(mod);
    Context &ctx = b.context();
    Function *fn = b.createFunction("f", ctx.voidType());
    Argument *p = fn->addArgument(ctx.pointerTo(ctx.i32()), "p");
    BasicBlock *entry = b.createBlock("entry");
    b.setInsertPoint(entry);
    // Store an i64 through an i32*.
    entry->append(std::make_unique<StoreInst>(
        ctx.voidType(), b.constI64(1), p));
    b.ret();
    auto problems = Verifier::verify(*fn);
    EXPECT_TRUE(mentions(problems, "mismatch"));
}

TEST(Verifier, VerifyOrDieExitsOnBadIr)
{
    Module mod("m");
    IRBuilder b(mod);
    Context &ctx = b.context();
    Function *fn = b.createFunction("f", ctx.voidType());
    b.createBlock("entry");
    EXPECT_EXIT(Verifier::verifyOrDie(*fn),
                ::testing::ExitedWithCode(1), "verification failed");
}

/**
 * @file
 * Property-based tests: randomly generated IR must survive the
 * printer/parser round trip and every optimization pipeline with
 * identical semantics, across many seeds.
 */

#include <gtest/gtest.h>

#include <array>

#include "ir/interpreter.hh"
#include "ir/ir_builder.hh"
#include "ir/parser.hh"
#include "ir/printer.hh"
#include "ir/verifier.hh"
#include "opt/fold.hh"
#include "opt/unroll.hh"

using namespace salam::ir;

namespace
{

/** Deterministic RNG (kernels::Lcg is in another library). */
class Rng
{
  public:
    explicit Rng(std::uint64_t seed) : state(seed * 2 + 1) {}

    std::uint64_t
    next()
    {
        state = state * 6364136223846793005ULL +
            1442695040888963407ULL;
        return state >> 16;
    }

    std::uint64_t below(std::uint64_t n) { return next() % n; }

  private:
    std::uint64_t state;
};

/**
 * Generate a random straight-line i64 function of @p length
 * instructions over @p num_args arguments. Division operands are
 * forced odd (via `or 1`) so no UB paths exist.
 */
Function *
randomStraightLine(IRBuilder &b, Rng &rng, unsigned num_args,
                   unsigned length)
{
    Context &ctx = b.context();
    Function *fn = b.createFunction("prop", ctx.i64());
    std::vector<Value *> pool;
    for (unsigned i = 0; i < num_args; ++i) {
        pool.push_back(fn->addArgument(
            ctx.i64(), "a" + std::to_string(i)));
    }
    BasicBlock *entry = b.createBlock("entry");
    b.setInsertPoint(entry);
    pool.push_back(b.constI64(static_cast<std::int64_t>(
        rng.below(1000)) - 500));

    auto pick = [&] {
        return pool[rng.below(pool.size())];
    };

    for (unsigned i = 0; i < length; ++i) {
        Value *v = nullptr;
        switch (rng.below(10)) {
          case 0:
            v = b.add(pick(), pick());
            break;
          case 1:
            v = b.sub(pick(), pick());
            break;
          case 2:
            v = b.mul(pick(), pick());
            break;
          case 3: {
            Value *divisor = b.bOr(pick(), b.constI64(1));
            v = b.sdiv(pick(), divisor);
            break;
          }
          case 4:
            v = b.bAnd(pick(), pick());
            break;
          case 5:
            v = b.bXor(pick(), pick());
            break;
          case 6:
            v = b.shl(pick(), b.constI64(
                                  static_cast<std::int64_t>(
                                      rng.below(63))));
            break;
          case 7:
            v = b.select(
                b.icmp(Predicate::SLT, pick(), pick()), pick(),
                pick());
            break;
          case 8:
            v = b.ashr(pick(), b.constI64(
                                   static_cast<std::int64_t>(
                                       rng.below(63))));
            break;
          default:
            v = b.add(pick(), b.constI64(
                                  static_cast<std::int64_t>(
                                      rng.below(64))));
            break;
        }
        pool.push_back(v);
    }
    // Fold everything into the result so nothing is trivially dead.
    Value *acc = pool.back();
    for (unsigned i = 0; i < 4; ++i)
        acc = b.bXor(acc, pick());
    b.ret(acc);
    return fn;
}

std::vector<RuntimeValue>
randomArgs(Rng &rng, unsigned count)
{
    std::vector<RuntimeValue> args;
    for (unsigned i = 0; i < count; ++i) {
        RuntimeValue v;
        v.bits = rng.next();
        args.push_back(v);
    }
    return args;
}

std::int64_t
evaluate(const Function &fn, const std::vector<RuntimeValue> &args)
{
    FlatMemory mem;
    Interpreter interp(mem);
    return interp.run(fn, args)
        .asSInt(fn.parent()->context().i64());
}

} // namespace

class IrProperty : public ::testing::TestWithParam<std::uint64_t>
{};

TEST_P(IrProperty, PrintParseRoundTripPreservesSemantics)
{
    Rng rng(GetParam());
    Module mod("m");
    IRBuilder b(mod);
    Function *fn = randomStraightLine(b, rng, 4, 40);
    Verifier::verifyOrDie(*fn);

    auto reparsed = Parser::parseModule(Printer::toString(mod));
    Function *fn2 = reparsed->function(0);
    Verifier::verifyOrDie(*fn2);

    for (int trial = 0; trial < 4; ++trial) {
        auto args = randomArgs(rng, 4);
        EXPECT_EQ(evaluate(*fn, args), evaluate(*fn2, args))
            << "seed " << GetParam() << " trial " << trial;
    }
}

TEST_P(IrProperty, CleanupPreservesSemantics)
{
    Rng rng(GetParam() ^ 0xC0FFEE);
    Module mod("m");
    IRBuilder b(mod);
    Function *fn = randomStraightLine(b, rng, 4, 40);

    // Reference values BEFORE the transform (the pass mutates fn).
    std::vector<std::vector<RuntimeValue>> inputs;
    std::vector<std::int64_t> expected;
    for (int trial = 0; trial < 4; ++trial) {
        inputs.push_back(randomArgs(rng, 4));
        expected.push_back(evaluate(*fn, inputs.back()));
    }

    salam::opt::cleanup(*fn);
    Verifier::verifyOrDie(*fn);
    for (int trial = 0; trial < 4; ++trial) {
        EXPECT_EQ(evaluate(*fn, inputs[static_cast<std::size_t>(
                               trial)]),
                  expected[static_cast<std::size_t>(trial)])
            << "seed " << GetParam();
    }
}

TEST_P(IrProperty, BalancePreservesIntegerSemantics)
{
    Rng rng(GetParam() ^ 0xBA1A4CE);
    Module mod("m");
    IRBuilder b(mod);
    Context &ctx = b.context();
    Function *fn = b.createFunction("chain", ctx.i64());
    std::vector<Value *> xs;
    for (int i = 0; i < 6; ++i)
        xs.push_back(fn->addArgument(ctx.i64(),
                                     "x" + std::to_string(i)));
    BasicBlock *entry = b.createBlock("entry");
    b.setInsertPoint(entry);
    // Random-length chains of random associative integer ops.
    Value *acc = xs[0];
    unsigned links = 6 + static_cast<unsigned>(rng.below(20));
    Opcode op =
        std::array<Opcode, 4>{Opcode::Add, Opcode::Mul,
                              Opcode::Xor,
                              Opcode::And}[rng.below(4)];
    for (unsigned i = 0; i < links; ++i) {
        Value *leaf = xs[rng.below(xs.size())];
        acc = b.binaryOp(op, acc, leaf);
    }
    b.ret(acc);

    std::vector<std::vector<RuntimeValue>> inputs;
    std::vector<std::int64_t> expected;
    for (int trial = 0; trial < 4; ++trial) {
        inputs.push_back(randomArgs(rng, 6));
        expected.push_back(evaluate(*fn, inputs.back()));
    }
    salam::opt::balanceReductions(*fn);
    Verifier::verifyOrDie(*fn);
    for (int trial = 0; trial < 4; ++trial) {
        EXPECT_EQ(evaluate(*fn, inputs[static_cast<std::size_t>(
                               trial)]),
                  expected[static_cast<std::size_t>(trial)])
            << "seed " << GetParam();
    }
}

TEST_P(IrProperty, UnrollPreservesLoopSemantics)
{
    // Random accumulator loop: acc' = f(acc, iv) with random f.
    Rng rng(GetParam() ^ 0x10013);
    Module mod("m");
    IRBuilder b(mod);
    Context &ctx = b.context();
    Function *fn = b.createFunction("loopy", ctx.i64());
    Argument *x = fn->addArgument(ctx.i64(), "x");
    BasicBlock *entry = b.createBlock("entry");
    BasicBlock *loop = b.createBlock("loop");
    BasicBlock *exit = b.createBlock("exit");
    std::int64_t trips =
        4 + static_cast<std::int64_t>(rng.below(28));

    b.setInsertPoint(entry);
    b.br(loop);
    b.setInsertPoint(loop);
    PhiInst *i = b.phi(ctx.i64(), "i");
    PhiInst *acc = b.phi(ctx.i64(), "acc");
    Value *mixed;
    switch (rng.below(3)) {
      case 0:
        mixed = b.add(acc, b.mul(i, x, "ix"), "mixed");
        break;
      case 1:
        mixed = b.bXor(acc, b.add(i, x, "ipx"), "mixed");
        break;
      default:
        mixed = b.mul(acc, b.bOr(i, b.constI64(3), "i3"),
                      "mixed");
        break;
    }
    Value *inext = b.add(i, b.constI64(1), "i.next");
    Value *cond = b.icmp(Predicate::SLT, inext,
                         b.constI64(trips), "cond");
    b.condBr(cond, loop, exit);
    i->addIncoming(b.constI64(0), entry);
    i->addIncoming(inext, loop);
    acc->addIncoming(b.constI64(1), entry);
    acc->addIncoming(mixed, loop);
    b.setInsertPoint(exit);
    b.ret(mixed);

    auto args = randomArgs(rng, 1);
    std::int64_t expected = evaluate(*fn, args);

    std::uint64_t factor = 2 + rng.below(6);
    salam::opt::Unroller::unrollByLabel(*fn, "loop", factor);
    Verifier::verifyOrDie(*fn);
    salam::opt::cleanup(*fn);
    Verifier::verifyOrDie(*fn);
    EXPECT_EQ(evaluate(*fn, args), expected)
        << "seed " << GetParam() << " factor " << factor;
}

INSTANTIATE_TEST_SUITE_P(Seeds, IrProperty,
                         ::testing::Range<std::uint64_t>(1, 21));

/** @file Trace-reuse fast path: replay fidelity and fallback. */

#include <gtest/gtest.h>

#include <memory>

#include "core/accel_fixture.hh"
#include "core/dyn_trace.hh"
#include "core/static_cdfg.hh"
#include "drive/trace_replay.hh"
#include "kernels/machsuite.hh"
#include "mem/backdoor.hh"

using namespace salam;

namespace
{

/** One full simulation of a (dev, spm) point; the replay oracle. */
struct FullRun
{
    core::EngineStats stats;
    std::uint64_t spmReads = 0;
    std::uint64_t spmWrites = 0;
};

FullRun
runFull(const core::DeviceConfig &dev,
        const mem::ScratchpadConfig &spm_cfg,
        core::DynTrace *capture = nullptr)
{
    // Fresh IR per run, like the benches: kernel IR construction is
    // deterministic, so static ids agree across builds.
    auto kernel = kernels::makeGemm(8, 2);
    ir::Module mod("replay_full");
    ir::IRBuilder b(mod);
    ir::Function *fn = kernel->buildOptimized(b);

    test::AccelSystem sys(*fn, dev, spm_cfg);
    if (capture != nullptr)
        sys.cu->enableTraceCapture(capture);

    mem::ScratchpadBackdoor backdoor(*sys.spm);
    kernel->seed(backdoor, test::spmBase);
    sys.run(kernel->args(test::spmBase));
    EXPECT_EQ(kernel->check(backdoor, test::spmBase), "");

    FullRun out;
    out.stats = sys.cu->stats();
    out.spmReads = sys.spm->readCount();
    out.spmWrites = sys.spm->writeCount();
    return out;
}

/** Captured trace + replay IR, shared by every replay in the file. */
struct Captured
{
    core::DynTrace trace;
    std::shared_ptr<ir::Module> mod;
    ir::Function *fn = nullptr;
    drive::ReplayPrep prep;
};

/**
 * Capture regime mirroring captureTraceEntry(): wide ports so the
 * capture run is cheap, block-sequential import left at the replay
 * configs' (default) value — the one knob that must agree.
 */
const Captured &
captured()
{
    static Captured c = [] {
        Captured out;
        core::DeviceConfig cap;
        cap.readPortsPerCycle = 64;
        cap.writePortsPerCycle = 64;
        cap.readQueueSize = 64;
        cap.writeQueueSize = 64;
        mem::ScratchpadConfig scfg = test::AccelSystem::defaultSpm();
        scfg.readPorts = 64;
        scfg.writePorts = 64;
        runFull(cap, scfg, &out.trace);

        auto kernel = kernels::makeGemm(8, 2);
        out.mod = std::make_shared<ir::Module>("replay_ir");
        ir::IRBuilder b(*out.mod);
        out.fn = kernel->buildOptimized(b);
        core::StaticCdfg cdfg(*out.fn, cap);
        out.prep = drive::buildReplayPrep(cdfg, out.trace);
        return out;
    }();
    return c;
}

drive::ReplayResult
replayPoint(const core::DeviceConfig &dev,
            const mem::ScratchpadConfig &spm_cfg)
{
    const Captured &c = captured();
    core::StaticCdfg cdfg(*c.fn, dev);
    drive::ReplaySpmConfig spm;
    spm.rangeStart = test::spmBase;
    spm.latencyCycles = spm_cfg.latencyCycles;
    spm.readPorts = spm_cfg.readPorts;
    spm.writePorts = spm_cfg.writePorts;
    spm.banks = spm_cfg.banks;
    spm.wordBytes = spm_cfg.wordBytes;
    drive::TraceReplayer replayer(cdfg, dev, c.trace, spm, &c.prep);
    return replayer.run();
}

/**
 * Field-by-field: the fast path promises the stats are
 * bit-identical, not merely close, so doubles compare exactly too.
 */
void
expectStatsEqual(const core::EngineStats &fast,
                 const core::EngineStats &full)
{
#define SALAM_EXPECT_FIELD_EQ(f) EXPECT_EQ(fast.f, full.f) << #f
    SALAM_EXPECT_FIELD_EQ(totalCycles);
    SALAM_EXPECT_FIELD_EQ(newExecCycles);
    SALAM_EXPECT_FIELD_EQ(stallCycles);
    SALAM_EXPECT_FIELD_EQ(stallLoadOnly);
    SALAM_EXPECT_FIELD_EQ(stallStoreOnly);
    SALAM_EXPECT_FIELD_EQ(stallComputeOnly);
    SALAM_EXPECT_FIELD_EQ(stallLoadCompute);
    SALAM_EXPECT_FIELD_EQ(stallStoreCompute);
    SALAM_EXPECT_FIELD_EQ(stallLoadStore);
    SALAM_EXPECT_FIELD_EQ(stallLoadStoreCompute);
    SALAM_EXPECT_FIELD_EQ(stallEmpty);
    SALAM_EXPECT_FIELD_EQ(loadsIssued);
    SALAM_EXPECT_FIELD_EQ(storesIssued);
    SALAM_EXPECT_FIELD_EQ(fpOpsIssued);
    SALAM_EXPECT_FIELD_EQ(intOpsIssued);
    SALAM_EXPECT_FIELD_EQ(otherOpsIssued);
    SALAM_EXPECT_FIELD_EQ(dynamicInstructions);
    SALAM_EXPECT_FIELD_EQ(committedInstructions);
    SALAM_EXPECT_FIELD_EQ(arenaHits);
    SALAM_EXPECT_FIELD_EQ(arenaMisses);
    SALAM_EXPECT_FIELD_EQ(cyclesWithLoadIssue);
    SALAM_EXPECT_FIELD_EQ(cyclesWithStoreIssue);
    SALAM_EXPECT_FIELD_EQ(cyclesWithFpIssue);
    SALAM_EXPECT_FIELD_EQ(cyclesWithLoadAndStoreIssue);
    SALAM_EXPECT_FIELD_EQ(cyclesWithLoadAndFpIssue);
    SALAM_EXPECT_FIELD_EQ(fuEnergyPj);
    SALAM_EXPECT_FIELD_EQ(registerReadEnergyPj);
    SALAM_EXPECT_FIELD_EQ(registerWriteEnergyPj);
#undef SALAM_EXPECT_FIELD_EQ
    for (std::size_t t = 0; t < hw::numFuTypes; ++t) {
        EXPECT_EQ(fast.fuBusyCycleSum[t], full.fuBusyCycleSum[t])
            << "fuBusyCycleSum[" << t << "]";
    }
}

/** One replay configuration of the equivalence grid. */
struct PointConfig
{
    const char *name;
    unsigned ports;      // engine issue ports + SPM ports
    unsigned fpLimit;    // 0 = dedicated FUs
    unsigned spmLatency;
    unsigned banks;
};

void
toConfigs(const PointConfig &p, core::DeviceConfig &dev,
          mem::ScratchpadConfig &spm)
{
    dev = core::DeviceConfig{};
    dev.readPortsPerCycle = p.ports;
    dev.writePortsPerCycle = p.ports;
    if (p.fpLimit != 0) {
        dev.setFuLimit(hw::FuType::FpAddSubDouble, p.fpLimit);
        dev.setFuLimit(hw::FuType::FpMultiplierDouble, p.fpLimit);
    }
    spm = test::AccelSystem::defaultSpm();
    spm.readPorts = p.ports;
    spm.writePorts = p.ports;
    spm.latencyCycles = p.spmLatency;
    spm.banks = p.banks;
}

} // namespace

TEST(TraceReplay, PrepBuildsCleanly)
{
    const Captured &c = captured();
    ASSERT_FALSE(c.trace.empty());
    EXPECT_EQ(c.prep.error, "");
}

/**
 * The tentpole guarantee: replaying the captured trace under a
 * different FU/port/latency/bank configuration produces the exact
 * EngineStats a full simulation of that configuration produces.
 */
TEST(TraceReplay, FastMatchesFullAcrossConfigs)
{
    const PointConfig grid[] = {
        {"default", 2, 0, 1, 1},
        {"narrow_ports", 1, 0, 1, 1},
        {"fu_limited", 2, 1, 1, 1},
        {"slow_banked_spm", 4, 2, 4, 2},
    };
    for (const PointConfig &p : grid) {
        SCOPED_TRACE(p.name);
        core::DeviceConfig dev;
        mem::ScratchpadConfig spm;
        toConfigs(p, dev, spm);

        FullRun full = runFull(dev, spm);
        drive::ReplayResult fast = replayPoint(dev, spm);
        ASSERT_TRUE(fast.ok) << fast.error;
        expectStatsEqual(fast.stats, full.stats);
        EXPECT_EQ(fast.spmReads, full.spmReads);
        EXPECT_EQ(fast.spmWrites, full.spmWrites);
    }
}

/** The grid must actually exercise different schedules. */
TEST(TraceReplay, ConfigsChangeTheSchedule)
{
    core::DeviceConfig dev;
    mem::ScratchpadConfig spm;
    toConfigs({"narrow", 1, 1, 4, 1}, dev, spm);
    drive::ReplayResult narrow = replayPoint(dev, spm);
    ASSERT_TRUE(narrow.ok) << narrow.error;

    toConfigs({"wide", 4, 0, 1, 1}, dev, spm);
    drive::ReplayResult wide = replayPoint(dev, spm);
    ASSERT_TRUE(wide.ok) << wide.error;

    EXPECT_LT(wide.stats.totalCycles, narrow.stats.totalCycles);
}

/**
 * Directed fallback: every condition that makes trace reuse unsound
 * must be reported by fastPathBlocker(), and a sound configuration
 * must not be.
 */
TEST(TraceReplay, FallbackBlockers)
{
    core::DeviceConfig dev;

    core::DynTrace empty;
    EXPECT_NE(drive::fastPathBlocker(empty, dev, false), "");

    const Captured &c = captured();
    EXPECT_EQ(drive::fastPathBlocker(c.trace, dev, false), "");

    // Fault injection makes outcomes schedule-dependent.
    EXPECT_NE(drive::fastPathBlocker(c.trace, dev, true), "");

    // Block-sequential import changes the capture regime itself.
    core::DeviceConfig seq = dev;
    seq.blockSequentialImport = !c.trace.capturedBlockSequential;
    EXPECT_NE(drive::fastPathBlocker(c.trace, seq, false), "");

    // A modeled interconnect in the memory path: the replay models
    // a private scratchpad only, so fabric arbitration/credit
    // timing would be silently dropped.
    EXPECT_NE(drive::fastPathBlocker(c.trace, dev, false, true), "");
    EXPECT_EQ(drive::fastPathBlocker(c.trace, dev, false, false), "");
}

/** A trace that does not match the static CDFG is rejected, not
 * replayed wrong. */
TEST(TraceReplay, MismatchedTraceIsRejected)
{
    const Captured &c = captured();
    core::DynTrace corrupt = c.trace;
    corrupt.insts[0].staticId = 0xFFFFFFu;

    core::DeviceConfig dev;
    core::StaticCdfg cdfg(*c.fn, dev);
    drive::ReplayPrep prep = drive::buildReplayPrep(cdfg, corrupt);
    EXPECT_NE(prep.error, "");

    drive::ReplaySpmConfig spm;
    spm.rangeStart = test::spmBase;
    drive::TraceReplayer replayer(cdfg, dev, corrupt, spm);
    drive::ReplayResult res = replayer.run();
    EXPECT_FALSE(res.ok);
    EXPECT_NE(res.error, "");
}

/** An empty trace cannot be replayed. */
TEST(TraceReplay, EmptyTraceFailsGracefully)
{
    const Captured &c = captured();
    core::DynTrace empty;
    core::DeviceConfig dev;
    core::StaticCdfg cdfg(*c.fn, dev);
    drive::ReplaySpmConfig spm;
    spm.rangeStart = test::spmBase;
    drive::TraceReplayer replayer(cdfg, dev, empty, spm);
    drive::ReplayResult res = replayer.run();
    EXPECT_FALSE(res.ok);
}

/** @file SweepSpec: grid expansion order and axis builders. */

#include <gtest/gtest.h>

#include "drive/sweep_spec.hh"

using salam::drive::SweepSpec;

TEST(SweepSpec, EmptySpecHasNoPoints)
{
    SweepSpec spec;
    EXPECT_EQ(spec.numPoints(), 0u);
    EXPECT_EQ(spec.numAxes(), 0u);
}

TEST(SweepSpec, NumPointsIsCartesianProduct)
{
    SweepSpec spec;
    spec.axis("a", {1, 2, 3}).axis("b", {10, 20}).axis("c", {7});
    EXPECT_EQ(spec.numAxes(), 3u);
    EXPECT_EQ(spec.numPoints(), 3u * 2u * 1u);
}

/**
 * Row-major with the FIRST axis slowest — the order of the nested
 * loops the spec replaces, and thus the historical point numbering
 * the benches' resume/config-hash machinery depends on.
 */
TEST(SweepSpec, ExpansionIsRowMajorFirstAxisSlowest)
{
    SweepSpec spec;
    spec.axis("outer", {1, 2}).axis("inner", {10, 20, 30});

    const std::uint64_t expect[6][2] = {
        {1, 10}, {1, 20}, {1, 30}, {2, 10}, {2, 20}, {2, 30},
    };
    ASSERT_EQ(spec.numPoints(), 6u);
    for (std::size_t p = 0; p < 6; ++p) {
        auto v = spec.valuesAt(p);
        ASSERT_EQ(v.size(), 2u);
        EXPECT_EQ(v[0], expect[p][0]) << "point " << p;
        EXPECT_EQ(v[1], expect[p][1]) << "point " << p;
        // value(point, axis) must agree with valuesAt(point).
        EXPECT_EQ(spec.value(p, 0), v[0]);
        EXPECT_EQ(spec.value(p, 1), v[1]);
    }
}

TEST(SweepSpec, SingletonAxisKeepsOrdering)
{
    SweepSpec wide;
    wide.axis("a", {1, 2}).axis("b", {10, 20});
    SweepSpec padded;
    padded.axis("a", {1, 2}).axis("one", {42}).axis("b", {10, 20});

    ASSERT_EQ(wide.numPoints(), padded.numPoints());
    for (std::size_t p = 0; p < wide.numPoints(); ++p) {
        auto w = wide.valuesAt(p);
        auto v = padded.valuesAt(p);
        EXPECT_EQ(v[0], w[0]) << "point " << p;
        EXPECT_EQ(v[1], 42u) << "point " << p;
        EXPECT_EQ(v[2], w[1]) << "point " << p;
    }
}

TEST(SweepSpec, AxisRangeIsInclusiveWhenStrideLands)
{
    SweepSpec spec;
    spec.axisRange("hit", 2, 8, 3).axisRange("miss", 0, 10, 4);
    EXPECT_EQ(spec.axisAt(0).values,
              (std::vector<std::uint64_t>{2, 5, 8}));
    EXPECT_EQ(spec.axisAt(1).values,
              (std::vector<std::uint64_t>{0, 4, 8}));
}

TEST(SweepSpec, AxisPowExpandsGeometrically)
{
    SweepSpec spec;
    spec.axisPow("p2", 2, 16).axisPow("p3", 3, 20, 2);
    EXPECT_EQ(spec.axisAt(0).values,
              (std::vector<std::uint64_t>{2, 4, 8, 16}));
    EXPECT_EQ(spec.axisAt(1).values,
              (std::vector<std::uint64_t>{3, 6, 12}));
}

TEST(SweepSpec, AxesJsonNamesEveryAxis)
{
    SweepSpec spec;
    spec.axis("fu_limit", {8, 16}).axis("spm_ports", {2, 4});
    EXPECT_EQ(spec.axesJson(0), "{\"fu_limit\":8,\"spm_ports\":2}");
    EXPECT_EQ(spec.axesJson(3), "{\"fu_limit\":16,\"spm_ports\":4}");
}

TEST(SweepSpec, ForEachPointVisitsInExpansionOrder)
{
    SweepSpec spec;
    spec.axis("a", {1, 2}).axis("b", {10, 20});

    std::size_t next = 0;
    spec.forEachPoint([&](std::size_t p,
                          const std::vector<std::uint64_t> &v) {
        EXPECT_EQ(p, next++);
        EXPECT_EQ(v, spec.valuesAt(p));
    });
    EXPECT_EQ(next, spec.numPoints());
}

/**
 * @file
 * Fault-tolerance tests for SweepRunner: per-point deadlines (both
 * the event-loop backstop and the deadline sentinel), retry with
 * attempt records, checkpoint/resume from a ResultStore, graceful
 * shutdown drain and cancel escalation, and chaos-style accounting
 * (interrupt, resume, verify the merged store covers every point
 * exactly).
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <thread>

#include "drive/sweep_runner.hh"
#include "inject/progress_sentinel.hh"
#include "obs/result_store.hh"
#include "sim/logging.hh"
#include "sim/sim_context.hh"
#include "sim/simulation.hh"
#include "support/minijson.hh"

using namespace salam;
using namespace salam::drive;
using salam::testsupport::parseJson;

namespace
{

/**
 * The worst hang mode: an event that reschedules itself at the same
 * tick. The simulated clock is frozen, so no sentinel event can ever
 * fire — only the event loop's host-limit backstop can catch it.
 */
class FrozenSpinner : public SimObject
{
  public:
    FrozenSpinner(Simulation &sim, std::string name)
        : SimObject(sim, std::move(name))
    {
    }

    std::string stuckReason() const override
    {
        return "spinning at a frozen tick";
    }

    void
    start()
    {
        eventQueue().schedule(curTick(), [this] { start(); },
                              name() + ".spin");
    }
};

/**
 * A hang whose clock still advances (the livelock shape): events fire
 * forever at increasing ticks, so the deadline sentinel's own check
 * event gets to run and produce the structured hang dump.
 */
class TickingSpinner : public SimObject
{
  public:
    TickingSpinner(Simulation &sim, std::string name)
        : SimObject(sim, std::move(name))
    {
    }

    std::string stuckReason() const override
    {
        return "ticking forever";
    }

    void
    start()
    {
        eventQueue().schedule(curTick() + 1000, [this] { start(); },
                              name() + ".tick");
    }
};

/** A point that can never finish; tick frozen. */
std::string
frozenPoint()
{
    Simulation sim;
    auto &spinner = sim.create<FrozenSpinner>("spinner");
    spinner.start();
    sim.run();
    return "{}"; // unreachable: the backstop fatal()s first
}

/** A point that can never finish but whose tick advances. */
std::string
tickingPoint(const std::string &dump_path)
{
    Simulation sim;
    auto &spinner = sim.create<TickingSpinner>("ticker");
    spinner.start();
    inject::armPointDeadline(sim, [] { return false; }, dump_path);
    sim.run();
    return "{}";
}

/** A fast, well-behaved point. */
std::string
quickPoint(std::size_t idx)
{
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
    return "{\"idx\": " + std::to_string(idx) + "}";
}

/** Records appended by a store rooted at @p dir matching @p kind. */
std::vector<const obs::LoadedRecord *>
recordsOfKind(const obs::StoreReader &reader, const std::string &kind)
{
    obs::RecordFilter filter;
    filter.kind = kind;
    return reader.select(filter);
}

/**
 * Fresh per-test store directory under the harness temp dir. The
 * temp dir persists across test-binary invocations, so stale records
 * from a previous run must be cleared or resume would see them.
 */
std::string
storeDirFor(const std::string &test)
{
    std::string dir =
        ::testing::TempDir() + "ut_resilience_" + test + ".store";
    std::filesystem::remove_all(dir);
    return dir;
}

} // namespace

TEST(Resilience, FrozenTickPointTimesOutWithoutStallingThePool)
{
    SweepRunner::Options opts;
    opts.threads = 2;
    opts.pointTimeoutSeconds = 0.25;
    SweepRunner runner(opts);
    auto results = runner.run(5, [](std::size_t idx) {
        if (idx == 1)
            return frozenPoint();
        return quickPoint(idx);
    });

    ASSERT_EQ(results.size(), 5u);
    EXPECT_FALSE(results[1].ok);
    EXPECT_EQ(results[1].outcome, "timeout");
    EXPECT_EQ(results[1].attempts, 1u);
    EXPECT_NE(results[1].error.find("deadline"), std::string::npos);
    // The other worker kept draining the queue while point 1 hung.
    for (std::size_t i : {0u, 2u, 3u, 4u}) {
        EXPECT_TRUE(results[i].ok) << i << ": " << results[i].error;
        EXPECT_EQ(results[i].outcome, "ok") << i;
    }
    EXPECT_FALSE(runner.interrupted());
}

TEST(Resilience, DeadlineSentinelClassifiesTimeoutAndWritesDump)
{
    const std::string dump_path =
        ::testing::TempDir() + "ut_resilience_deadline_dump.json";
    std::remove(dump_path.c_str());

    SweepRunner::Options opts;
    opts.threads = 1;
    opts.pointTimeoutSeconds = 0.25;
    SweepRunner runner(opts);
    auto results = runner.run(1, [&](std::size_t) {
        return tickingPoint(dump_path);
    });

    ASSERT_EQ(results.size(), 1u);
    EXPECT_FALSE(results[0].ok);
    EXPECT_EQ(results[0].outcome, "timeout");

    // The sentinel (not the dump-less backstop) caught this hang, so
    // the structured state dump exists and names the spinner.
    std::ifstream in(dump_path);
    ASSERT_TRUE(in.good()) << dump_path;
    std::stringstream ss;
    ss << in.rdbuf();
    auto doc = parseJson(ss.str());
    EXPECT_EQ(doc.at("kind").string, "salam_state_dump");
    EXPECT_NE(doc.at("reason").string.find("deadline"),
              std::string::npos);
    ASSERT_EQ(doc.at("suspects").array.size(), 1u);
    EXPECT_EQ(doc.at("suspects").array[0].at("object").string,
              "ticker");
    std::remove(dump_path.c_str());
}

TEST(Resilience, RetryRecoversFlakyPointAndRecordsAttempts)
{
    const std::string dir = storeDirFor("retry");
    std::string err;
    auto store = obs::ResultStore::open(dir, &err);
    ASSERT_NE(store, nullptr) << err;

    std::atomic<int> point2_failures{0};
    SweepRunner::Options opts;
    opts.threads = 2;
    opts.pointRetries = 2;
    opts.retryBackoffMs = 1;
    opts.store = store.get();
    opts.storeName = "retry_ut";
    opts.durable = true;
    SweepRunner runner(opts);
    auto results = runner.run(4, [&](std::size_t idx) {
        if (idx == 2 &&
            point2_failures.fetch_add(1,
                                      std::memory_order_relaxed) == 0)
            fatal("transient failure on first attempt");
        return quickPoint(idx);
    });

    ASSERT_EQ(results.size(), 4u);
    EXPECT_TRUE(results[2].ok) << results[2].error;
    EXPECT_EQ(results[2].outcome, "ok");
    EXPECT_EQ(results[2].attempts, 2u);
    for (std::size_t i : {0u, 1u, 3u})
        EXPECT_EQ(results[i].attempts, 1u) << i;

    store.reset(); // flush + close before reading
    obs::StoreReader reader = obs::StoreReader::load(dir);
    ASSERT_TRUE(reader.ok()) << reader.error();
    auto attempts = recordsOfKind(reader, "attempt");
    // One record per attempt actually executed: 3 + 2.
    ASSERT_EQ(attempts.size(), 5u);
    unsigned point2_attempts = 0;
    bool saw_failed_first = false;
    for (const obs::LoadedRecord *rec : attempts) {
        if (rec->point == 2) {
            ++point2_attempts;
            if (rec->record.numberOr("attempt", 0) == 1.0) {
                EXPECT_EQ(rec->outcome, "fault");
                saw_failed_first = true;
            } else {
                EXPECT_EQ(rec->outcome, "ok");
            }
        } else {
            EXPECT_EQ(rec->outcome, "ok");
        }
    }
    EXPECT_EQ(point2_attempts, 2u);
    EXPECT_TRUE(saw_failed_first);
}

TEST(Resilience, RetryExhaustionKeepsLastFailure)
{
    SweepRunner::Options opts;
    opts.threads = 1;
    opts.pointRetries = 1;
    opts.retryBackoffMs = 1;
    SweepRunner runner(opts);
    auto results = runner.run(1, [](std::size_t) -> std::string {
        fatal("permanently broken configuration");
    });
    ASSERT_EQ(results.size(), 1u);
    EXPECT_FALSE(results[0].ok);
    EXPECT_EQ(results[0].outcome, "fault");
    EXPECT_EQ(results[0].attempts, 2u);
    EXPECT_NE(results[0].error.find("permanently broken"),
              std::string::npos);
}

TEST(Resilience, ResumeSkipsCompletedPointsByIndex)
{
    const std::string dir = storeDirFor("resume_index");
    std::atomic<bool> first_sweep{true};

    auto point_fn = [&](std::size_t idx) {
        if (idx == 3 && first_sweep.load(std::memory_order_relaxed))
            fatal("flaky only on the first sweep");
        return quickPoint(idx);
    };

    {
        std::string err;
        auto store = obs::ResultStore::open(dir, &err);
        ASSERT_NE(store, nullptr) << err;
        SweepRunner::Options opts;
        opts.threads = 2;
        opts.store = store.get();
        opts.storeName = "resume_ut";
        opts.durable = true;
        SweepRunner runner(opts);
        auto results = runner.run(6, point_fn);
        EXPECT_FALSE(results[3].ok);
        EXPECT_EQ(results[3].outcome, "fault");
    }

    // Second run, resuming from the same store: only the failed
    // point re-runs; the five ok points are cache hits.
    first_sweep.store(false, std::memory_order_relaxed);
    std::string err;
    auto store = obs::ResultStore::open(dir, &err);
    ASSERT_NE(store, nullptr) << err;
    SweepRunner::Options opts;
    opts.threads = 2;
    opts.store = store.get();
    opts.storeName = "resume_ut";
    opts.resumePath = dir;
    opts.durable = true;
    SweepRunner runner(opts);
    auto results = runner.run(6, point_fn);

    ASSERT_EQ(results.size(), 6u);
    EXPECT_TRUE(results[3].ok) << results[3].error;
    EXPECT_EQ(results[3].outcome, "ok");
    EXPECT_EQ(results[3].attempts, 1u);
    for (std::size_t i : {0u, 1u, 2u, 4u, 5u}) {
        EXPECT_TRUE(results[i].ok) << i;
        EXPECT_EQ(results[i].outcome, "cached") << i;
        EXPECT_EQ(results[i].attempts, 0u) << i;
    }

    // The aggregate dump separates the deferred classes.
    std::ostringstream os;
    SweepRunner::writeAggregateJson(os, "resume", results,
                                    runner.lastThreads(),
                                    runner.lastWallSeconds());
    auto doc = parseJson(os.str());
    EXPECT_EQ(doc.at("failed_points").number, 0.0);
    EXPECT_EQ(doc.at("cached_points").number, 5.0);
    EXPECT_EQ(doc.at("outcomes").at("cached").number, 5.0);
    EXPECT_EQ(doc.at("outcomes").at("ok").number, 1.0);
}

TEST(Resilience, ResumeMatchesByConfigHash)
{
    const std::string dir = storeDirFor("resume_hash");
    auto hash_of = [](std::size_t idx) {
        return std::uint64_t(0xabc000) + idx;
    };

    {
        // Seed the resume store with ok runs for the even points, as
        // a point function recording RunReports would have.
        std::string err;
        auto store = obs::ResultStore::open(dir, &err);
        ASSERT_NE(store, nullptr) << err;
        for (std::size_t idx : {0u, 2u}) {
            obs::StoreRecord rec;
            rec.kind = "run";
            rec.bench = "hash_ut";
            rec.outcome = "ok";
            rec.configHash = hash_of(idx);
            rec.point = static_cast<long>(idx);
            rec.json = "{}";
            store->append(std::move(rec));
        }
        ASSERT_TRUE(store->flush());
    }

    SweepRunner::Options opts;
    opts.threads = 2;
    opts.resumePath = dir;
    opts.pointHash = hash_of;
    SweepRunner runner(opts);
    auto results = runner.run(4, quickPoint);

    ASSERT_EQ(results.size(), 4u);
    EXPECT_EQ(results[0].outcome, "cached");
    EXPECT_EQ(results[2].outcome, "cached");
    EXPECT_EQ(results[1].outcome, "ok");
    EXPECT_EQ(results[3].outcome, "ok");
}

TEST(Resilience, ResumeFromMissingStoreStartsFromScratch)
{
    SweepRunner::Options opts;
    opts.threads = 1;
    opts.resumePath =
        ::testing::TempDir() + "ut_resilience_no_such_store";
    SweepRunner runner(opts);
    auto results = runner.run(3, quickPoint);
    for (const auto &r : results) {
        EXPECT_TRUE(r.ok) << r.error;
        EXPECT_EQ(r.outcome, "ok");
    }
}

TEST(Resilience, ShutdownDrainsQueueAndResumeFinishesTheRest)
{
    const std::string dir = storeDirFor("shutdown");
    {
        std::string err;
        auto store = obs::ResultStore::open(dir, &err);
        ASSERT_NE(store, nullptr) << err;
        SweepRunner::Options opts;
        opts.threads = 1;
        opts.store = store.get();
        opts.storeName = "drain_ut";
        opts.durable = true;
        SweepRunner runner(opts);
        auto results = runner.run(6, [&](std::size_t idx) {
            if (idx == 1)
                SweepRunner::requestShutdown();
            return quickPoint(idx);
        });

        // The in-flight point finished; everything queued behind it
        // drained as "skipped".
        EXPECT_TRUE(runner.interrupted());
        EXPECT_TRUE(results[0].ok);
        EXPECT_TRUE(results[1].ok);
        for (std::size_t i : {2u, 3u, 4u, 5u}) {
            EXPECT_FALSE(results[i].ok) << i;
            EXPECT_EQ(results[i].outcome, "skipped") << i;
            EXPECT_EQ(results[i].attempts, 0u) << i;
        }
    }

    {
        // Every point of the grid is accounted for in the store, and
        // the sweep-level record says "interrupted".
        obs::StoreReader reader = obs::StoreReader::load(dir);
        ASSERT_TRUE(reader.ok()) << reader.error();
        EXPECT_EQ(recordsOfKind(reader, "sweep_point").size(), 6u);
        auto sweeps = recordsOfKind(reader, "sweep");
        ASSERT_EQ(sweeps.size(), 1u);
        EXPECT_EQ(sweeps[0]->outcome, "interrupted");
        EXPECT_EQ(sweeps[0]->record.numberOr("skipped_points", -1),
                  4.0);
    }

    // A resume in the same process must not inherit the shutdown:
    // run() resets the flags, skips the two done points, and
    // completes the rest.
    std::string err;
    auto store = obs::ResultStore::open(dir, &err);
    ASSERT_NE(store, nullptr) << err;
    SweepRunner::Options opts;
    opts.threads = 2;
    opts.store = store.get();
    opts.storeName = "drain_ut";
    opts.resumePath = dir;
    opts.durable = true;
    SweepRunner runner(opts);
    auto results = runner.run(6, quickPoint);
    EXPECT_FALSE(runner.interrupted());
    EXPECT_EQ(results[0].outcome, "cached");
    EXPECT_EQ(results[1].outcome, "cached");
    for (std::size_t i : {2u, 3u, 4u, 5u}) {
        EXPECT_TRUE(results[i].ok) << i;
        EXPECT_EQ(results[i].outcome, "ok") << i;
    }
}

TEST(Resilience, CancelUnwindsInFlightSimulation)
{
    SweepRunner::Options opts;
    opts.threads = 1;
    SweepRunner runner(opts);
    auto results = runner.run(3, [](std::size_t) {
        // Escalated shutdown while this point's simulation is
        // mid-flight: the event loop's backstop sees the cancel flag
        // and unwinds the point as "skipped" (re-run on resume).
        SweepRunner::requestCancel();
        return frozenPoint();
    });

    ASSERT_EQ(results.size(), 3u);
    EXPECT_TRUE(runner.interrupted());
    EXPECT_FALSE(results[0].ok);
    EXPECT_EQ(results[0].outcome, "skipped");
    EXPECT_EQ(results[0].attempts, 1u);
    EXPECT_NE(results[0].error.find("cancel"), std::string::npos);
    // Queued points never started.
    EXPECT_EQ(results[1].outcome, "skipped");
    EXPECT_EQ(results[1].attempts, 0u);
    EXPECT_EQ(results[2].outcome, "skipped");
}

TEST(Resilience, ChaosInterruptResumeCoversEveryPointExactly)
{
    // Chaos shape, in-process: a sweep with a flaky point gets
    // interrupted mid-run, then resumed (same store) until it
    // completes. The merged store must account for every point of
    // the grid with a terminal ok/cached record — the invariant the
    // scripts/chaos_sweep.sh harness checks across real processes
    // and SIGKILLs.
    constexpr std::size_t points = 10;
    const std::string dir = storeDirFor("chaos");
    std::atomic<int> flaky_failures{0};
    std::atomic<bool> interrupt_armed{true};

    auto point_fn = [&](std::size_t idx) {
        if (idx == 4 &&
            flaky_failures.fetch_add(1,
                                     std::memory_order_relaxed) == 0)
            fatal("chaos: flaky point, first attempt");
        if (idx == 6 &&
            interrupt_armed.exchange(false,
                                     std::memory_order_relaxed))
            SweepRunner::requestShutdown();
        return quickPoint(idx);
    };

    unsigned sweeps_run = 0;
    bool interrupted = true;
    std::vector<SweepPointResult> last;
    while (interrupted) {
        ASSERT_LT(sweeps_run, 5u) << "resume loop did not converge";
        std::string err;
        auto store = obs::ResultStore::open(dir, &err);
        ASSERT_NE(store, nullptr) << err;
        SweepRunner::Options opts;
        opts.threads = 2;
        opts.pointRetries = 1;
        opts.retryBackoffMs = 1;
        opts.store = store.get();
        opts.storeName = "chaos_ut";
        opts.resumePath = dir;
        opts.durable = true;
        SweepRunner runner(opts);
        last = runner.run(points, point_fn);
        interrupted = runner.interrupted();
        ++sweeps_run;
    }
    EXPECT_GE(sweeps_run, 2u) << "the interrupt never fired";

    // The final pass sees only successes: fresh runs or cache hits.
    ASSERT_EQ(last.size(), points);
    for (const auto &r : last) {
        EXPECT_TRUE(r.ok) << r.index << ": " << r.error;
        EXPECT_TRUE(r.outcome == "ok" || r.outcome == "cached")
            << r.index << ": " << r.outcome;
    }

    // Exact accounting across the merged store: every point has at
    // least one terminal ok/cached record, one sweep record exists
    // per pass, and only the final pass reports a clean finish.
    obs::StoreReader reader = obs::StoreReader::load(dir);
    ASSERT_TRUE(reader.ok()) << reader.error();
    std::vector<bool> done(points, false);
    for (const obs::LoadedRecord *rec :
         recordsOfKind(reader, "sweep_point")) {
        ASSERT_GE(rec->point, 0);
        ASSERT_LT(static_cast<std::size_t>(rec->point), points);
        if (rec->outcome == "ok" || rec->outcome == "cached")
            done[static_cast<std::size_t>(rec->point)] = true;
    }
    for (std::size_t i = 0; i < points; ++i)
        EXPECT_TRUE(done[i]) << "no terminal record for point " << i;
    auto sweeps = recordsOfKind(reader, "sweep");
    ASSERT_EQ(sweeps.size(), sweeps_run);
    EXPECT_EQ(sweeps.front()->outcome, "interrupted");
    EXPECT_EQ(sweeps.back()->outcome, "ok");
}

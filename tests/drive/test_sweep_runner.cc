/** @file SweepRunner: determinism, isolation, and aggregation. */

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

#include "core/accel_fixture.hh"
#include "drive/sweep_runner.hh"
#include "kernels/machsuite.hh"
#include "mem/backdoor.hh"
#include "obs/run_report.hh"
#include "sim/sim_context.hh"
#include "support/minijson.hh"

using namespace salam;
using namespace salam::drive;
using salam::testsupport::JsonParser;
using salam::testsupport::JsonValue;

namespace
{

/**
 * One real simulation per point: GEMM on the accel fixture with a
 * per-point port count, payload = cycles + full stats dump + run
 * report. Any cross-point leakage (shared engine state, shared stat
 * registry, shared context) shows up as a payload mismatch between
 * serial and parallel runs.
 */
std::string
simulatePoint(std::size_t idx)
{
    const unsigned ports = 1u << (idx % 4);

    auto kernel = kernels::makeGemm(8, 2);
    ir::Module mod("sweep");
    ir::IRBuilder b(mod);
    ir::Function *fn = kernel->buildOptimized(b);

    core::DeviceConfig dev;
    dev.readPortsPerCycle = ports;
    dev.writePortsPerCycle = ports;

    mem::ScratchpadConfig spm_cfg = test::AccelSystem::defaultSpm();
    spm_cfg.readPorts = ports;
    spm_cfg.writePorts = ports;
    test::AccelSystem sys(*fn, dev, spm_cfg);

    mem::ScratchpadBackdoor backdoor(*sys.spm);
    kernel->seed(backdoor, test::spmBase);
    std::uint64_t cycles = sys.run(kernel->args(test::spmBase));
    std::string check = kernel->check(backdoor, test::spmBase);
    if (!check.empty())
        fatal("point %zu: %s", idx, check.c_str());

    obs::RunReport report;
    report.run = "gemm.p" + std::to_string(ports);
    report.cycles = cycles;
    report.outcome = "ok";
    report.statsJson = sys.sim.stats().dumpJsonString();
    std::ostringstream report_os;
    report.writeJson(report_os);

    std::ostringstream os;
    os << "{\"cycles\": " << cycles
       << ", \"report\": " << report_os.str() << "}";
    return os.str();
}

} // namespace

TEST(SweepRunner, SerialAndParallelPayloadsBitIdentical)
{
    constexpr std::size_t points = 8;

    SweepRunner::Options serial_opts;
    serial_opts.threads = 1;
    SweepRunner serial(serial_opts);
    auto serial_results = serial.run(points, simulatePoint);

    SweepRunner::Options parallel_opts;
    parallel_opts.threads = 4;
    SweepRunner parallel(parallel_opts);
    auto parallel_results = parallel.run(points, simulatePoint);

    ASSERT_EQ(serial_results.size(), points);
    ASSERT_EQ(parallel_results.size(), points);
    EXPECT_EQ(serial.lastThreads(), 1u);
    EXPECT_EQ(parallel.lastThreads(), 4u);

    for (std::size_t i = 0; i < points; ++i) {
        ASSERT_TRUE(serial_results[i].ok) << serial_results[i].error;
        ASSERT_TRUE(parallel_results[i].ok)
            << parallel_results[i].error;
        EXPECT_EQ(serial_results[i].index, i);
        EXPECT_EQ(parallel_results[i].index, i);
        // The whole point of context isolation: per-point stats and
        // report JSON must not depend on what ran concurrently.
        EXPECT_EQ(serial_results[i].payload,
                  parallel_results[i].payload)
            << "payload diverged at point " << i;

        JsonValue doc =
            JsonParser(parallel_results[i].payload).parse();
        EXPECT_GT(doc.at("cycles").number, 0.0);
        EXPECT_EQ(doc.at("report").at("outcome").string, "ok");
    }
}

TEST(SweepRunner, FailedPointIsIsolated)
{
    SweepRunner::Options opts;
    opts.threads = 4;
    SweepRunner runner(opts);
    auto results = runner.run(6, [](std::size_t idx) {
        if (idx == 2)
            fatal("point %zu exploded", idx);
        if (idx == 4)
            throw std::runtime_error("plain failure");
        return std::string("{\"idx\": ") + std::to_string(idx) +
            "}";
    });

    ASSERT_EQ(results.size(), 6u);
    for (std::size_t i : {0u, 1u, 3u, 5u}) {
        EXPECT_TRUE(results[i].ok) << i;
        EXPECT_EQ(results[i].outcome, "ok");
    }
    EXPECT_FALSE(results[2].ok);
    EXPECT_EQ(results[2].outcome, "fault");
    EXPECT_NE(results[2].error.find("point 2 exploded"),
              std::string::npos);
    EXPECT_FALSE(results[4].ok);
    EXPECT_EQ(results[4].outcome, "error");
    EXPECT_EQ(results[4].error, "plain failure");
}

TEST(SweepRunner, WorkerContextsInheritFlagMaskButNotMore)
{
    SimContext launcher;
    launcher.setFlagMask(0b101);
    launcher.addTerminationHook(
        [](const std::string &, const std::string &) {
            FAIL() << "worker fatal must not reach launcher hooks";
        });
    ScopedSimContext bind(launcher);

    SweepRunner::Options opts;
    opts.threads = 2;
    SweepRunner runner(opts);
    auto results = runner.run(4, [](std::size_t idx) {
        if (SimContext::current().flagMask() != 0b101)
            throw std::runtime_error("flag mask not inherited");
        if (&SimContext::current() ==
            &SimContext::processDefault()) {
            throw std::runtime_error("worker not context-bound");
        }
        if (idx == 3)
            fatal("deliberate");
        return std::string();
    });
    for (std::size_t i : {0u, 1u, 2u})
        EXPECT_TRUE(results[i].ok) << results[i].error;
    EXPECT_FALSE(results[3].ok);
    EXPECT_EQ(&SimContext::current(), &launcher);
}

TEST(SweepRunner, ThreadCountClampsToPointCount)
{
    SweepRunner::Options opts;
    opts.threads = 16;
    SweepRunner runner(opts);
    auto results = runner.run(3, [](std::size_t) {
        return std::string();
    });
    EXPECT_EQ(results.size(), 3u);
    EXPECT_EQ(runner.lastThreads(), 3u);
}

TEST(SweepRunner, AggregateJsonIsWellFormed)
{
    SweepRunner::Options opts;
    opts.threads = 2;
    SweepRunner runner(opts);
    auto results = runner.run(3, [](std::size_t idx) {
        if (idx == 1)
            throw std::runtime_error("bad \"point\"");
        return std::string("{\"value\": ") + std::to_string(idx) +
            "}";
    });

    std::ostringstream os;
    SweepRunner::writeAggregateJson(os, "unit\"test", results,
                                    runner.lastThreads(),
                                    runner.lastWallSeconds());
    JsonValue doc = JsonParser(os.str()).parse();
    EXPECT_EQ(doc.at("sweep").string, "unit\"test");
    EXPECT_EQ(doc.at("points").number, 3.0);
    EXPECT_EQ(doc.at("failed_points").number, 1.0);
    EXPECT_EQ(doc.at("threads").number, 2.0);
    ASSERT_EQ(doc.at("results").array.size(), 3u);
    EXPECT_EQ(doc.at("results").array[0].at("point")
                  .at("value").number, 0.0);
    EXPECT_EQ(doc.at("results").array[1].at("outcome").string,
              "error");
    EXPECT_EQ(doc.at("results").array[1].at("error").string,
              "bad \"point\"");
    EXPECT_EQ(doc.at("results").array[2].at("point")
                  .at("value").number, 2.0);
}

TEST(SweepRunner, HostTelemetryRecordsTimelinesAndWorkers)
{
    constexpr std::size_t points = 6;
    SweepRunner::Options opts;
    opts.threads = 2;
    opts.hostTelemetry = true;
    opts.captureSimTracePoint = -1;
    SweepRunner runner(opts);
    auto results = runner.run(points, simulatePoint);
    for (const auto &r : results)
        ASSERT_TRUE(r.ok) << r.error;

    const SweepHostSummary &host = runner.hostSummary();
    EXPECT_TRUE(host.enabled);
    EXPECT_EQ(host.threads, 2u);
    EXPECT_GT(host.wallSeconds, 0.0);
    EXPECT_GT(host.effectiveSpeedup, 0.0);

    // Every point has a complete, ordered span set on a valid
    // worker.
    ASSERT_EQ(host.timelines.size(), points);
    std::size_t worker_points = 0;
    for (std::size_t i = 0; i < points; ++i) {
        const SweepPointTimeline &tl = host.timelines[i];
        EXPECT_EQ(tl.index, i);
        EXPECT_LT(tl.worker, host.threads) << i;
        EXPECT_LE(tl.pickedNs, tl.setupEndNs) << i;
        EXPECT_LE(tl.setupEndNs, tl.runEndNs) << i;
        EXPECT_LE(tl.runEndNs, tl.endNs) << i;
        EXPECT_GT(tl.runEndNs - tl.setupEndNs, 0u) << i;
    }
    ASSERT_EQ(host.workerPoints.size(), host.threads);
    for (unsigned w = 0; w < host.threads; ++w)
        worker_points += host.workerPoints[w];
    EXPECT_EQ(worker_points, points);

    // The merged telemetry saw real engine/memory event time.
    EXPECT_GT(host.merged.phase(obs::HostPhase::EngineSchedule)
                  .count, 0u);
    EXPECT_GT(host.merged.phase(obs::HostPhase::MemoryModel).count,
              0u);
    EXPECT_GT(host.merged.selfNanosTotal(), 0u);
}

TEST(SweepRunner, HostAggregateJsonAccountsForAllPoints)
{
    constexpr std::size_t points = 5;
    SweepRunner::Options opts;
    opts.threads = 4;
    opts.hostTelemetry = true;
    opts.captureSimTracePoint = -1;
    SweepRunner runner(opts);
    auto results = runner.run(points, simulatePoint);

    std::ostringstream os;
    SweepRunner::writeAggregateJson(os, "host-e2e", results,
                                    runner.lastThreads(),
                                    runner.lastWallSeconds(),
                                    &runner.hostSummary());
    JsonValue doc = JsonParser(os.str()).parse();
    EXPECT_EQ(doc.at("points").number,
              static_cast<double>(points));
    const JsonValue &host = doc.at("host");
    EXPECT_EQ(host.at("schema").string, "sweep_host_telemetry_v1");
    EXPECT_EQ(host.at("threads").number,
              static_cast<double>(runner.lastThreads()));
    ASSERT_EQ(host.at("workers").array.size(),
              runner.lastThreads());
    double worker_points = 0.0;
    for (const JsonValue &w : host.at("workers").array) {
        EXPECT_GE(w.at("busy_fraction").number, 0.0);
        worker_points += w.at("points").number;
    }
    EXPECT_EQ(worker_points, static_cast<double>(points));
    ASSERT_EQ(host.at("points").array.size(), points);
    for (std::size_t i = 0; i < points; ++i) {
        const JsonValue &p = host.at("points").array[i];
        EXPECT_EQ(p.at("index").number, static_cast<double>(i));
        EXPECT_LT(p.at("worker").number,
                  static_cast<double>(runner.lastThreads()));
        EXPECT_GT(p.at("run_seconds").number, 0.0);
    }
    EXPECT_TRUE(host.at("telemetry").isObject());
    EXPECT_TRUE(host.at("locks").isArray());
}

TEST(SweepRunner, HostTelemetryFilesAreWellFormed)
{
    SweepRunner::Options opts;
    opts.threads = 2;
    opts.hostTelemetry = true;
    opts.captureSimTracePoint = -1;
    SweepRunner runner(opts);
    auto results = runner.run(4, simulatePoint);
    for (const auto &r : results)
        ASSERT_TRUE(r.ok) << r.error;

    // Under the test harness's temp dir, never the source tree.
    const std::string path = ::testing::TempDir() +
        "ut_sweep_host_telemetry.json";
    ASSERT_TRUE(runner.writeHostTelemetryFiles(path, "ut-sweep"));

    std::ifstream json_in(path);
    ASSERT_TRUE(json_in.good());
    std::stringstream json_ss;
    json_ss << json_in.rdbuf();
    JsonValue doc = JsonParser(json_ss.str()).parse();
    EXPECT_EQ(doc.at("sweep").string, "ut-sweep");
    EXPECT_TRUE(doc.at("host").at("telemetry").isObject());

    // The Chrome trace carries host-scope (pid 1) worker tracks.
    std::ifstream trace_in(path + ".trace.json");
    ASSERT_TRUE(trace_in.good());
    std::stringstream trace_ss;
    trace_ss << trace_in.rdbuf();
    JsonValue trace = JsonParser(trace_ss.str()).parse();
    bool saw_worker_track = false;
    bool saw_host_slice = false;
    for (const JsonValue &ev : trace.at("traceEvents").array) {
        if (ev.at("ph").string == "M" &&
            ev.at("name").string == "thread_name" &&
            ev.at("args").at("name").string.rfind("worker", 0) ==
                0) {
            saw_worker_track = true;
        }
        if (ev.at("ph").string == "X" &&
            ev.at("pid").number == 1.0)
            saw_host_slice = true;
    }
    EXPECT_TRUE(saw_worker_track);
    EXPECT_TRUE(saw_host_slice);
}

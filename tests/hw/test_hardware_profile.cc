/** @file Unit tests for FU mapping, hardware profile, and CactiLite. */

#include <gtest/gtest.h>

#include <set>
#include <string>

#include "hw/cacti_lite.hh"
#include "hw/hardware_profile.hh"
#include "ir/ir_builder.hh"

using namespace salam::hw;
using namespace salam::ir;

namespace
{

class FuMapTest : public ::testing::Test
{
  protected:
    FuMapTest() : mod("m"), b(mod), ctx(b.context())
    {
        b.createFunction("f", ctx.voidType());
        entry = b.createBlock("entry");
        b.setInsertPoint(entry);
    }

    Module mod;
    IRBuilder b;
    Context &ctx;
    BasicBlock *entry;
};

} // namespace

TEST_F(FuMapTest, ArithmeticMapsToExpectedUnits)
{
    auto *add = static_cast<Instruction *>(
        b.add(b.constI64(1), b.constI64(2)));
    EXPECT_EQ(fuTypeFor(*add), FuType::IntAdder);

    auto *mul = static_cast<Instruction *>(
        b.mul(b.constI64(2), b.constI64(3)));
    EXPECT_EQ(fuTypeFor(*mul), FuType::IntMultiplier);

    auto *shl = static_cast<Instruction *>(
        b.shl(b.constI64(1), b.constI64(4)));
    EXPECT_EQ(fuTypeFor(*shl), FuType::Shifter);

    auto *fadd_dp = static_cast<Instruction *>(
        b.fadd(b.constDouble(1), b.constDouble(2)));
    EXPECT_EQ(fuTypeFor(*fadd_dp), FuType::FpAddSubDouble);

    auto *fmul_sp = static_cast<Instruction *>(
        b.fmul(b.constFloat(1), b.constFloat(2)));
    EXPECT_EQ(fuTypeFor(*fmul_sp), FuType::FpMultiplier);

    auto *fdiv = static_cast<Instruction *>(
        b.fdiv(b.constDouble(1), b.constDouble(2)));
    EXPECT_EQ(fuTypeFor(*fdiv), FuType::FpDividerDouble);
}

TEST_F(FuMapTest, ControlAndWiringHaveNoUnit)
{
    auto *cmp = static_cast<Instruction *>(
        b.icmp(Predicate::SLT, b.constI64(1), b.constI64(2)));
    EXPECT_EQ(fuTypeFor(*cmp), FuType::Comparator);

    auto *z = static_cast<Instruction *>(
        b.zext(b.constI32(1), ctx.i64()));
    EXPECT_EQ(fuTypeFor(*z), FuType::None);

    auto *conv = static_cast<Instruction *>(
        b.sitofp(b.constI64(1), ctx.doubleType()));
    EXPECT_EQ(fuTypeFor(*conv), FuType::Conversion);
}

TEST_F(FuMapTest, GepUsesAddressAdders)
{
    Function *fn = b.currentFunction();
    Argument *p = fn->addArgument(ctx.pointerTo(ctx.i32()), "p");
    auto *gep = static_cast<Instruction *>(
        b.gep(ctx.i32(), p, b.constI64(1)));
    EXPECT_EQ(fuTypeFor(*gep), FuType::IntAdder);
}

TEST(HardwareProfile, DefaultsAreInternallyConsistent)
{
    HardwareProfile p = HardwareProfile::defaultProfile();

    // FP units cost more than their integer counterparts.
    EXPECT_GT(p.fu(FuType::FpAddSubDouble).dynamicEnergyPj,
              p.fu(FuType::IntAdder).dynamicEnergyPj);
    EXPECT_GT(p.fu(FuType::FpMultiplierDouble).areaUm2,
              p.fu(FuType::IntMultiplier).areaUm2);
    // Double precision beats single precision.
    EXPECT_GT(p.fu(FuType::FpAddSubDouble).leakagePowerMw,
              p.fu(FuType::FpAddSub).leakagePowerMw);
    // 3-stage FP pipeline default (the paper's FP approximation).
    EXPECT_EQ(p.fu(FuType::FpAddSubDouble).latencyCycles, 3u);
    EXPECT_EQ(p.fu(FuType::FpMultiplierDouble).latencyCycles, 3u);
    // Dividers are unpipelined (II == latency).
    EXPECT_EQ(p.fu(FuType::FpDividerDouble).initiationInterval,
              p.fu(FuType::FpDividerDouble).latencyCycles);
}

TEST(HardwareProfile, LatencyForInstructions)
{
    HardwareProfile p = HardwareProfile::defaultProfile();
    Module mod("m");
    IRBuilder b(mod);
    Context &ctx = b.context();
    b.createFunction("f", ctx.voidType());
    b.setInsertPoint(b.createBlock("entry"));
    auto *fmul = static_cast<Instruction *>(
        b.fmul(b.constDouble(1), b.constDouble(2)));
    EXPECT_EQ(p.latencyFor(*fmul), 3u);
    auto *add = static_cast<Instruction *>(
        b.add(b.constI64(1), b.constI64(2)));
    EXPECT_EQ(p.latencyFor(*add), 1u);
}

TEST(HardwareProfile, UserOverridesApply)
{
    HardwareProfile p = HardwareProfile::defaultProfile();
    p.fu(FuType::FpAddSubDouble).latencyCycles = 5;
    EXPECT_EQ(p.fu(FuType::FpAddSubDouble).latencyCycles, 5u);
}

TEST(CactiLite, EnergyGrowsWithSize)
{
    SramConfig small{1024, 4, 1, 1};
    SramConfig big{16 * 1024, 4, 1, 1};
    auto ms = CactiLite::evaluate(small);
    auto mb = CactiLite::evaluate(big);
    EXPECT_GT(mb.readEnergyPj, ms.readEnergyPj);
    EXPECT_GT(mb.leakagePowerMw, ms.leakagePowerMw);
    EXPECT_GT(mb.areaUm2, ms.areaUm2);
    EXPECT_GT(mb.accessLatencyNs, ms.accessLatencyNs);
}

TEST(CactiLite, MultiPortingCostsAreaAndLeakage)
{
    SramConfig one{4096, 4, 1, 1};
    SramConfig four{4096, 4, 4, 1};
    auto m1 = CactiLite::evaluate(one);
    auto m4 = CactiLite::evaluate(four);
    EXPECT_GT(m4.areaUm2, 2.0 * m1.areaUm2);
    EXPECT_GT(m4.leakagePowerMw, m1.leakagePowerMw);
}

TEST(CactiLite, BankingReducesAccessEnergy)
{
    SramConfig flat{16 * 1024, 4, 1, 1};
    SramConfig banked{16 * 1024, 4, 1, 8};
    auto mf = CactiLite::evaluate(flat);
    auto mb = CactiLite::evaluate(banked);
    EXPECT_LT(mb.readEnergyPj, mf.readEnergyPj);
    // ...at a small area overhead.
    EXPECT_GT(mb.areaUm2, mf.areaUm2);
}

TEST(CactiLite, WritesCostMoreThanReads)
{
    auto m = CactiLite::evaluate(SramConfig{4096, 4, 2, 2});
    EXPECT_GT(m.writeEnergyPj, m.readEnergyPj);
}

TEST(CactiLite, CacheOverheadsExceedPlainSram)
{
    SramConfig cfg{8192, 4, 1, 1};
    auto spm = CactiLite::evaluate(cfg);
    auto cache = CactiLite::evaluateCache(cfg, 4);
    EXPECT_GT(cache.readEnergyPj, spm.readEnergyPj);
    EXPECT_GT(cache.areaUm2, spm.areaUm2);
    EXPECT_GT(cache.leakagePowerMw, spm.leakagePowerMw);
    // Higher associativity costs more energy.
    auto cache8 = CactiLite::evaluateCache(cfg, 8);
    EXPECT_GT(cache8.readEnergyPj, cache.readEnergyPj);
}

TEST(FunctionalUnits, NamesAreUnique)
{
    std::set<std::string> names;
    for (std::size_t i = 0; i < numFuTypes; ++i)
        names.insert(fuTypeName(static_cast<FuType>(i)));
    EXPECT_EQ(names.size(), numFuTypes);
}

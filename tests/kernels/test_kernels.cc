/** @file Functional validation of every benchmark kernel. */

#include <gtest/gtest.h>

#include "ir/parser.hh"
#include "ir/printer.hh"
#include "ir/verifier.hh"
#include "kernels/machsuite.hh"

using namespace salam;
using namespace salam::ir;
using namespace salam::kernels;

namespace
{

constexpr std::uint64_t base = 0x10000;

/** Interpret @p fn over a fresh seeded memory and run the check. */
std::string
runAndCheck(const Kernel &kernel, Function &fn)
{
    FlatMemory mem;
    kernel.seed(mem, base);
    Interpreter interp(mem);
    interp.run(fn, kernel.args(base));
    return kernel.check(mem, base);
}

} // namespace

class KernelParam
    : public ::testing::TestWithParam<const char *>
{
  protected:
    std::unique_ptr<Kernel> kernel = makeKernel(GetParam());
};

TEST_P(KernelParam, BuildsAndVerifies)
{
    ASSERT_NE(kernel, nullptr);
    Module mod("m");
    IRBuilder b(mod);
    Function *fn = kernel->build(b);
    auto problems = Verifier::verify(*fn);
    EXPECT_TRUE(problems.empty())
        << (problems.empty() ? "" : problems.front());
    EXPECT_GT(fn->instructionCount(), 5u);
}

TEST_P(KernelParam, InterpreterMatchesGolden)
{
    Module mod("m");
    IRBuilder b(mod);
    Function *fn = kernel->build(b);
    EXPECT_EQ(runAndCheck(*kernel, *fn), "");
}

TEST_P(KernelParam, OptimizedPipelinePreservesSemantics)
{
    Module mod("m");
    IRBuilder b(mod);
    Function *fn = kernel->buildOptimized(b);
    Verifier::verifyOrDie(*fn);
    EXPECT_EQ(runAndCheck(*kernel, *fn), "");
}

TEST_P(KernelParam, PrintParseRoundTripPreservesSemantics)
{
    Module mod("m");
    IRBuilder b(mod);
    Function *fn = kernel->build(b);
    std::string text = Printer::toString(mod);
    auto reparsed = Parser::parseModule(text);
    Function *fn2 = reparsed->function(0);
    ASSERT_NE(fn2, nullptr);
    Verifier::verifyOrDie(*fn2);
    EXPECT_EQ(runAndCheck(*kernel, *fn2), "");
    (void)fn;
}

TEST_P(KernelParam, FootprintCoversArguments)
{
    // Every pointer argument must land inside [base, base+footprint).
    auto args = kernel->args(base);
    for (const auto &arg : args) {
        if (arg.bits >= base) {
            EXPECT_LT(arg.bits, base + kernel->footprintBytes())
                << kernel->name();
        }
    }
}

INSTANTIATE_TEST_SUITE_P(
    MachSuite, KernelParam,
    ::testing::Values("bfs-queue", "fft-strided", "gemm", "md-grid",
                      "md-knn", "nw", "spmv-crs", "stencil2d",
                      "stencil3d", "conv2d", "relu", "maxpool"),
    [](const ::testing::TestParamInfo<const char *> &info) {
        std::string name = info.param;
        for (auto &c : name) {
            if (c == '-')
                c = '_';
        }
        return name;
    });

TEST(KernelRegistry, MachsuiteListIsComplete)
{
    auto kernels = machsuiteKernels();
    EXPECT_EQ(kernels.size(), 9u);
    for (const auto &k : kernels)
        EXPECT_NE(makeKernel(k->name()), nullptr) << k->name();
    EXPECT_EQ(makeKernel("nope"), nullptr);
}

TEST(KernelVariants, SpmvGuardedBothDatasets)
{
    for (unsigned dataset : {1u, 2u}) {
        auto kernel = makeSpmv(64, 8, true, dataset);
        Module mod("m");
        IRBuilder b(mod);
        Function *fn = kernel->build(b);
        Verifier::verifyOrDie(*fn);
        EXPECT_EQ(runAndCheck(*kernel, *fn), "")
            << "dataset " << dataset;
    }
}

TEST(KernelVariants, GemmUnrollFactorsAllCorrect)
{
    for (unsigned unroll : {1u, 4u, 16u, 32u}) {
        auto kernel = makeGemm(16, unroll);
        Module mod("m");
        IRBuilder b(mod);
        Function *fn = kernel->buildOptimized(b);
        EXPECT_EQ(runAndCheck(*kernel, *fn), "")
            << "unroll " << unroll;
    }
}

TEST(KernelVariants, FftSizesPowerOfTwo)
{
    for (unsigned size : {16u, 64u, 256u}) {
        auto kernel = makeFft(size);
        Module mod("m");
        IRBuilder b(mod);
        Function *fn = kernel->build(b);
        EXPECT_EQ(runAndCheck(*kernel, *fn), "") << "size " << size;
    }
}

TEST(KernelVariants, StreamVariantsBuildAndVerify)
{
    // Stream-addressed variants use a fixed port slot; they cannot
    // be interpreted against flat memory meaningfully, but must
    // still build valid IR.
    for (auto &kernel :
         {makeConv2d(16, 16, true), makeRelu(64, true, true),
          makeMaxPool(16, 16, true, true)}) {
        Module mod("m");
        IRBuilder b(mod);
        Function *fn = kernel->build(b);
        auto problems = Verifier::verify(*fn);
        EXPECT_TRUE(problems.empty()) << kernel->name();
    }
}

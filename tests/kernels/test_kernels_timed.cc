/** @file End-to-end timed (SALAM engine) runs of benchmark kernels. */

#include <gtest/gtest.h>

#include "kernels/machsuite.hh"
#include "mem/backdoor.hh"
#include "../core/accel_fixture.hh"

using namespace salam;
using namespace salam::ir;
using namespace salam::kernels;
using salam::test::AccelSystem;
using salam::test::spmBase;

namespace
{

/** Run a kernel through the timed accelerator; return cycles. */
std::uint64_t
runTimed(const Kernel &kernel, std::string *failure,
         bool optimized = true)
{
    Module mod("m");
    IRBuilder b(mod);
    Function *fn =
        optimized ? kernel.buildOptimized(b) : kernel.build(b);

    core::DeviceConfig dev;
    dev.readPortsPerCycle = 4;
    dev.writePortsPerCycle = 4;
    AccelSystem sys(*fn, dev);
    mem::ScratchpadBackdoor backdoor(*sys.spm);
    kernel.seed(backdoor, spmBase);
    std::uint64_t cycles = sys.run(kernel.args(spmBase));
    *failure = kernel.check(backdoor, spmBase);
    return cycles;
}

} // namespace

class TimedKernel : public ::testing::TestWithParam<const char *>
{};

TEST_P(TimedKernel, EngineMatchesGolden)
{
    std::unique_ptr<Kernel> kernel;
    // Scale down the heavier kernels so the timed suite stays fast.
    std::string name = GetParam();
    if (name == "gemm")
        kernel = makeGemm(8, 4);
    else if (name == "fft-strided")
        kernel = makeFft(64);
    else if (name == "md-knn")
        kernel = makeMdKnn(16, 8, 2);
    else if (name == "md-grid")
        kernel = makeMdGrid(2, 3);
    else if (name == "nw")
        kernel = makeNw(16);
    else if (name == "stencil2d")
        kernel = makeStencil2d(12, 12, 2);
    else if (name == "stencil3d")
        kernel = makeStencil3d(4, 6, 6, 2);
    else if (name == "bfs-queue")
        kernel = makeBfs(32, 3);
    else if (name == "spmv-crs")
        kernel = makeSpmv(16, 6);
    else
        kernel = makeKernel(name);
    ASSERT_NE(kernel, nullptr);

    std::string failure;
    std::uint64_t cycles = runTimed(*kernel, &failure);
    EXPECT_EQ(failure, "") << name;
    EXPECT_GT(cycles, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    MachSuite, TimedKernel,
    ::testing::Values("bfs-queue", "fft-strided", "gemm", "md-grid",
                      "md-knn", "nw", "spmv-crs", "stencil2d",
                      "stencil3d"),
    [](const ::testing::TestParamInfo<const char *> &info) {
        std::string name = info.param;
        for (auto &c : name) {
            if (c == '-')
                c = '_';
        }
        return name;
    });

TEST(TimedKernelProperties, UnrolledGemmIsFasterSameResult)
{
    std::string f1, f8;
    std::uint64_t c1 = runTimed(*makeGemm(8, 1), &f1);
    std::uint64_t c8 = runTimed(*makeGemm(8, 8), &f8);
    EXPECT_EQ(f1, "");
    EXPECT_EQ(f8, "");
    EXPECT_LT(c8, c1);
}

TEST(TimedKernelProperties, SpmvCyclesTrackNonzeros)
{
    // More nonzeros per row -> more work -> more cycles; the engine
    // retimes from the data, not from a fixed trace.
    std::string fa, fb;
    std::uint64_t sparse =
        runTimed(*makeSpmv(16, 3), &fa);
    std::uint64_t dense =
        runTimed(*makeSpmv(16, 12), &fb);
    EXPECT_EQ(fa, "");
    EXPECT_EQ(fb, "");
    EXPECT_GT(dense, sparse);
}

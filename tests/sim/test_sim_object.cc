/** @file Unit tests for SimObject/ClockedObject and Simulation. */

#include <gtest/gtest.h>

#include "sim/sim_object.hh"
#include "sim/simulation.hh"

using namespace salam;

namespace
{

class Counter : public ClockedObject
{
  public:
    Counter(Simulation &sim, std::string name, Tick period, int limit)
        : ClockedObject(sim, std::move(name), period), limit(limit),
          tickEvent([this] { tick(); }, this->name() + ".tick")
    {}

    void init() override { schedule(tickEvent, clockEdge()); }

    int count = 0;

  private:
    void
    tick()
    {
        if (++count < limit)
            schedule(tickEvent, clockEdge(Cycles(1)));
    }

    int limit;
    EventFunctionWrapper tickEvent;
};

} // namespace

TEST(ClockedObject, CycleTickConversions)
{
    Simulation sim;
    auto &obj = sim.create<Counter>("ctr", periodFromMhz(100), 1);
    EXPECT_EQ(obj.clockPeriod(), 10000u); // 100 MHz -> 10 ns -> 10000 ps
    EXPECT_DOUBLE_EQ(obj.frequencyMhz(), 100.0);
    EXPECT_EQ(obj.cyclesToTicks(Cycles(3)), 30000u);
    EXPECT_EQ(obj.ticksToCycles(20001).get(), 3u);
}

TEST(ClockedObject, ClockEdgeAlignsUp)
{
    Simulation sim;
    auto &obj = sim.create<Counter>("ctr", 10, 1);
    // At tick 0 the next edge is now.
    EXPECT_EQ(obj.clockEdge(), 0u);
    EXPECT_EQ(obj.clockEdge(Cycles(2)), 20u);
}

TEST(Simulation, InitSchedulesAndRunDrives)
{
    Simulation sim;
    auto &obj = sim.create<Counter>("ctr", 10, 5);
    sim.run();
    EXPECT_EQ(obj.count, 5);
    EXPECT_EQ(sim.curTick(), 40u);
}

TEST(Simulation, TwoClockDomainsInterleaveDeterministically)
{
    Simulation sim;
    auto &fast = sim.create<Counter>("fast", 10, 10);
    auto &slow = sim.create<Counter>("slow", 25, 4);
    sim.run();
    EXPECT_EQ(fast.count, 10);
    EXPECT_EQ(slow.count, 4);
}

TEST(Simulation, ZeroClockPeriodIsFatal)
{
    Simulation sim;
    EXPECT_EXIT(sim.create<Counter>("bad", 0, 1),
                ::testing::ExitedWithCode(1), "clock period");
}

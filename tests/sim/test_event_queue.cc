/** @file Unit tests for the event queue core. */

#include <gtest/gtest.h>

#include <vector>

#include "sim/event_queue.hh"

using namespace salam;

TEST(EventQueue, StartsEmptyAtTickZero)
{
    EventQueue q;
    EXPECT_TRUE(q.empty());
    EXPECT_EQ(q.curTick(), 0u);
    EXPECT_FALSE(q.step());
}

TEST(EventQueue, LambdaEventsFireInTimeOrder)
{
    EventQueue q;
    std::vector<int> order;
    q.schedule(30, [&] { order.push_back(3); });
    q.schedule(10, [&] { order.push_back(1); });
    q.schedule(20, [&] { order.push_back(2); });
    q.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(q.curTick(), 30u);
}

TEST(EventQueue, SameTickFifoWithinPriority)
{
    EventQueue q;
    std::vector<int> order;
    for (int i = 0; i < 8; ++i)
        q.schedule(5, [&order, i] { order.push_back(i); });
    q.run();
    for (int i = 0; i < 8; ++i)
        EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(EventQueue, PriorityBreaksTies)
{
    EventQueue q;
    std::vector<int> order;
    EventFunctionWrapper low([&] { order.push_back(1); }, "low",
                             Event::cpuTickPri);
    EventFunctionWrapper high([&] { order.push_back(0); }, "high",
                              Event::memoryResponsePri);
    q.schedule(&low, 5);
    q.schedule(&high, 5);
    q.run();
    EXPECT_EQ(order, (std::vector<int>{0, 1}));
}

TEST(EventQueue, EventsCanScheduleMoreEvents)
{
    EventQueue q;
    int count = 0;
    std::function<void()> chain = [&] {
        ++count;
        if (count < 5)
            q.schedule(q.curTick() + 10, chain);
    };
    q.schedule(0, chain);
    q.run();
    EXPECT_EQ(count, 5);
    EXPECT_EQ(q.curTick(), 40u);
}

TEST(EventQueue, RunHonorsLimit)
{
    EventQueue q;
    int fired = 0;
    q.schedule(10, [&] { ++fired; });
    q.schedule(100, [&] { ++fired; });
    q.run(50);
    EXPECT_EQ(fired, 1);
    EXPECT_FALSE(q.empty());
    q.run();
    EXPECT_EQ(fired, 2);
}

TEST(EventQueue, DescheduleCancelsEvent)
{
    EventQueue q;
    int fired = 0;
    EventFunctionWrapper ev([&] { ++fired; }, "cancel-me");
    q.schedule(&ev, 10);
    EXPECT_TRUE(ev.scheduled());
    q.deschedule(&ev);
    EXPECT_FALSE(ev.scheduled());
    q.run();
    EXPECT_EQ(fired, 0);
}

TEST(EventQueue, RescheduleMovesEvent)
{
    EventQueue q;
    Tick fired_at = 0;
    EventFunctionWrapper ev([&] { fired_at = q.curTick(); }, "move");
    q.schedule(&ev, 10);
    q.reschedule(&ev, 42);
    q.run();
    EXPECT_EQ(fired_at, 42u);
}

TEST(EventQueue, MemberEventReschedulesItself)
{
    EventQueue q;
    int ticks = 0;
    EventFunctionWrapper ev(
        [&] {
            if (++ticks < 3)
                q.schedule(&ev, q.curTick() + 7);
        },
        "self");
    q.schedule(&ev, 0);
    q.run();
    EXPECT_EQ(ticks, 3);
    EXPECT_EQ(q.curTick(), 14u);
}

TEST(EventQueue, RunLimitIsInclusive)
{
    EventQueue q;
    int fired = 0;
    q.schedule(50, [&] { ++fired; });
    q.schedule(51, [&] { ++fired; });
    q.run(50);
    EXPECT_EQ(fired, 1);
    EXPECT_EQ(q.curTick(), 50u);
}

TEST(EventQueue, RunLimitOnEmptyOrFutureQueueDoesNotAdvanceTime)
{
    EventQueue q;
    EXPECT_EQ(q.run(100), 0u);
    EXPECT_EQ(q.curTick(), 0u);
    // A pending event beyond the limit is untouched too.
    int fired = 0;
    q.schedule(500, [&] { ++fired; });
    EXPECT_EQ(q.run(100), 0u);
    EXPECT_EQ(fired, 0);
    EXPECT_FALSE(q.empty());
}

TEST(EventQueue, ResumeAfterLimitInterleavesNewEvents)
{
    EventQueue q;
    std::vector<Tick> fired_at;
    q.schedule(10, [&] { fired_at.push_back(q.curTick()); });
    q.schedule(100, [&] { fired_at.push_back(q.curTick()); });
    q.run(50);
    EXPECT_EQ(fired_at, (std::vector<Tick>{10}));
    // Events scheduled between run() calls still sort into place.
    q.schedule(60, [&] { fired_at.push_back(q.curTick()); });
    q.run();
    EXPECT_EQ(fired_at, (std::vector<Tick>{10, 60, 100}));
}

TEST(EventQueue, DescheduleAtTheLimitBoundary)
{
    // An event left pending exactly at the stop tick can still be
    // descheduled before the queue is resumed.
    EventQueue q;
    int fired = 0;
    EventFunctionWrapper ev([&] { ++fired; }, "boundary");
    q.schedule(10, [] {});
    q.schedule(&ev, 50);
    q.run(49);
    EXPECT_TRUE(ev.scheduled());
    q.deschedule(&ev);
    q.run();
    EXPECT_EQ(fired, 0);
    EXPECT_TRUE(q.empty());
}

TEST(EventQueue, ReentrantRunServicesNestedWindowThenContinues)
{
    // An event handler may drain the queue up to a nested limit
    // (e.g. co-simulation lockstep); the outer run picks up where
    // the nested one stopped.
    EventQueue q;
    std::vector<int> order;
    q.schedule(10, [&] {
        order.push_back(1);
        q.schedule(20, [&] { order.push_back(2); });
        q.run(30); // services the tick-20 event, not tick-40
        order.push_back(3);
    });
    q.schedule(40, [&] { order.push_back(4); });
    q.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3, 4}));
    EXPECT_EQ(q.curTick(), 40u);
    EXPECT_EQ(q.numServiced(), 3u);
}

TEST(EventQueue, ServicedCountTracksEvents)
{
    EventQueue q;
    for (int i = 0; i < 10; ++i)
        q.schedule(static_cast<Tick>(i), [] {});
    q.run();
    EXPECT_EQ(q.numServiced(), 10u);
}

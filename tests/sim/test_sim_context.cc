/** @file SimContext isolation: flags, sinks, hooks, fatal modes. */

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "obs/debug_flags.hh"
#include "sim/logging.hh"
#include "sim/sim_context.hh"
#include "sim/sim_object.hh"
#include "sim/simulation.hh"

using namespace salam;

TEST(SimContext, CurrentFallsBackToProcessDefault)
{
    EXPECT_EQ(&SimContext::current(),
              &SimContext::processDefault());
    SimContext ctx;
    {
        ScopedSimContext bind(ctx);
        EXPECT_EQ(&SimContext::current(), &ctx);
    }
    EXPECT_EQ(&SimContext::current(),
              &SimContext::processDefault());
}

TEST(SimContext, ScopedBindingNests)
{
    SimContext outer, inner;
    ScopedSimContext bind_outer(outer);
    {
        ScopedSimContext bind_inner(inner);
        EXPECT_EQ(&SimContext::current(), &inner);
    }
    EXPECT_EQ(&SimContext::current(), &outer);
}

TEST(SimContext, DebugFlagStateIsPerContext)
{
    SimContext a, b;
    const unsigned id = obs::flag::Event.id();
    {
        ScopedSimContext bind(a);
        obs::flag::Event.enable();
        EXPECT_TRUE(obs::flag::Event.enabled());
    }
    {
        ScopedSimContext bind(b);
        EXPECT_FALSE(obs::flag::Event.enabled());
    }
    EXPECT_TRUE(a.flagEnabled(id));
    EXPECT_FALSE(b.flagEnabled(id));
    {
        ScopedSimContext bind(a);
        obs::flag::Event.disable();
    }
    EXPECT_FALSE(a.flagEnabled(id));
}

TEST(SimContext, LogSinkIsPerContext)
{
    SimContext a, b;
    std::vector<std::string> lines_a, lines_b;
    a.setLogSink([&](const std::string &l) {
        lines_a.push_back(l);
    });
    b.setLogSink([&](const std::string &l) {
        lines_b.push_back(l);
    });
    {
        ScopedSimContext bind(a);
        SimContext::current().emitLog("to-a");
    }
    {
        ScopedSimContext bind(b);
        SimContext::current().emitLog("to-b");
    }
    ASSERT_EQ(lines_a.size(), 1u);
    EXPECT_EQ(lines_a[0], "to-a");
    ASSERT_EQ(lines_b.size(), 1u);
    EXPECT_EQ(lines_b[0], "to-b");
}

TEST(SimContext, TerminationHooksArePerContext)
{
    SimContext a, b;
    a.setFatalMode(SimContext::FatalMode::Throw);
    b.setFatalMode(SimContext::FatalMode::Throw);
    int fired_a = 0, fired_b = 0;
    a.addTerminationHook(
        [&](const std::string &, const std::string &) {
            ++fired_a;
        });
    b.addTerminationHook(
        [&](const std::string &, const std::string &) {
            ++fired_b;
        });
    {
        ScopedSimContext bind(a);
        EXPECT_THROW(SimContext::current().failFatal("boom"),
                     FatalError);
    }
    EXPECT_EQ(fired_a, 1);
    EXPECT_EQ(fired_b, 0);
}

TEST(SimContext, ThrowModeCarriesOutcomeAndMessage)
{
    SimContext ctx;
    ctx.setFatalMode(SimContext::FatalMode::Throw);
    ctx.setFatalOutcome("deadlock");
    ScopedSimContext bind(ctx);
    try {
        fatal("engine stuck at cycle %d", 42);
        FAIL() << "fatal() must not return in throw mode";
    } catch (const FatalError &e) {
        EXPECT_EQ(e.outcome(), "deadlock");
        EXPECT_NE(std::string(e.what()).find("cycle 42"),
                  std::string::npos);
    }
}

TEST(SimContext, ContextSurvivesFailedFatalForReuse)
{
    // After a thrown FatalError the context must still be usable:
    // sweep workers reuse the thread for the next point.
    SimContext ctx;
    ctx.setFatalMode(SimContext::FatalMode::Throw);
    ScopedSimContext bind(ctx);
    EXPECT_THROW(ctx.failFatal("first"), FatalError);
    EXPECT_THROW(ctx.failFatal("second"), FatalError);
}

TEST(SimContext, BindingIsThreadLocal)
{
    SimContext main_ctx;
    ScopedSimContext bind(main_ctx);
    const SimContext *seen = nullptr;
    std::thread worker([&] {
        // A new thread starts unbound regardless of the spawning
        // thread's binding.
        seen = &SimContext::current();
    });
    worker.join();
    EXPECT_EQ(seen, &SimContext::processDefault());
    EXPECT_EQ(&SimContext::current(), &main_ctx);
}

TEST(SimContext, TwoSimulationsInOneProcessStayIsolated)
{
    SimContext ctx_a, ctx_b;
    Simulation sim_a(ctx_a);
    Simulation sim_b(ctx_b);

    // Each simulation's stat registry and event queue are its own;
    // context state set while one runs must not leak to the other.
    auto &counter_a =
        sim_a.stats().add("ticks", "events run");
    auto &counter_b =
        sim_b.stats().add("ticks", "events run");

    ScopedSimContext bind(ctx_a);
    obs::flag::Event.enable();
    counter_a += 2;
    ASSERT_TRUE(ctx_a.flagEnabled(obs::flag::Event.id()));

    {
        ScopedSimContext bind_b(ctx_b);
        EXPECT_FALSE(obs::flag::Event.enabled());
        counter_b += 5;
    }

    EXPECT_EQ(counter_a.value(), 2.0);
    EXPECT_EQ(counter_b.value(), 5.0);
    EXPECT_NE(sim_a.stats().dumpJsonString(),
              sim_b.stats().dumpJsonString());
    EXPECT_EQ(&sim_a.context(), &ctx_a);
    EXPECT_EQ(&sim_b.context(), &ctx_b);
}

/** @file Unit tests for the statistics registry. */

#include <gtest/gtest.h>

#include <sstream>

#include "sim/statistics.hh"
#include "support/minijson.hh"

using namespace salam;
using salam::testsupport::parseJson;

TEST(Statistics, AddAndAccumulate)
{
    StatRegistry reg;
    Stat &s = reg.add("acc.cycles", "total cycles");
    ++s;
    s += 9.0;
    EXPECT_DOUBLE_EQ(s.value(), 10.0);
    EXPECT_DOUBLE_EQ(reg.find("acc.cycles")->value(), 10.0);
}

TEST(Statistics, FindMissingReturnsNull)
{
    StatRegistry reg;
    EXPECT_EQ(reg.find("nope"), nullptr);
}

TEST(Statistics, DuplicateNamePanics)
{
    StatRegistry reg;
    reg.add("x", "first");
    EXPECT_DEATH(reg.add("x", "second"), "duplicate statistic");
}

TEST(Statistics, SumByPrefix)
{
    StatRegistry reg;
    reg.add("acc0.power.fu", "fu power").set(2.0);
    reg.add("acc0.power.reg", "reg power").set(3.0);
    reg.add("acc1.power.fu", "fu power").set(5.0);
    EXPECT_DOUBLE_EQ(reg.sumByPrefix("acc0.power."), 5.0);
    EXPECT_DOUBLE_EQ(reg.sumByPrefix("acc"), 10.0);
    EXPECT_DOUBLE_EQ(reg.sumByPrefix("zzz"), 0.0);
}

TEST(Statistics, DumpContainsNamesAndValues)
{
    StatRegistry reg;
    reg.add("a.b", "a stat").set(7.0);
    std::ostringstream os;
    reg.dump(os);
    EXPECT_NE(os.str().find("a.b"), std::string::npos);
    EXPECT_NE(os.str().find("7"), std::string::npos);
}

TEST(Statistics, ResetAllZeroes)
{
    StatRegistry reg;
    reg.add("a", "").set(1.0);
    reg.add("b", "").set(2.0);
    reg.resetAll();
    EXPECT_DOUBLE_EQ(reg.find("a")->value(), 0.0);
    EXPECT_DOUBLE_EQ(reg.find("b")->value(), 0.0);
}

TEST(Histogram, BucketsSamplesByRange)
{
    StatRegistry reg;
    Histogram &h =
        reg.addHistogram("h", "test histogram", 0.0, 10.0, 5);
    h.sample(0.0);  // bucket 0: [0, 2)
    h.sample(1.9);  // bucket 0
    h.sample(2.0);  // bucket 1: [2, 4)
    h.sample(9.99); // bucket 4: [8, 10)
    EXPECT_EQ(h.count(), 4u);
    EXPECT_EQ(h.bucketCount(0), 2u);
    EXPECT_EQ(h.bucketCount(1), 1u);
    EXPECT_EQ(h.bucketCount(4), 1u);
    EXPECT_DOUBLE_EQ(h.bucketLow(1), 2.0);
    EXPECT_DOUBLE_EQ(h.bucketHigh(1), 4.0);
}

TEST(Histogram, UnderflowAndOverflowCaptured)
{
    StatRegistry reg;
    Histogram &h = reg.addHistogram("h", "", 10.0, 20.0, 2);
    h.sample(9.999);  // below min
    h.sample(-50.0);  // below min
    h.sample(20.0);   // at max -> overflow (range is half-open)
    h.sample(1e9);    // far above
    h.sample(15.0);   // in range
    EXPECT_EQ(h.underflow(), 2u);
    EXPECT_EQ(h.overflow(), 2u);
    EXPECT_EQ(h.count(), 5u);
    EXPECT_DOUBLE_EQ(h.minValue(), -50.0);
    EXPECT_DOUBLE_EQ(h.maxValue(), 1e9);
}

TEST(Histogram, SingleValueAndWeightedSamples)
{
    StatRegistry reg;
    // Degenerate range: min == max still works (width forced to 1).
    Histogram &h = reg.addHistogram("h", "", 5.0, 5.0, 1);
    h.sample(5.0, 3);
    EXPECT_EQ(h.count(), 3u);
    EXPECT_DOUBLE_EQ(h.mean(), 5.0);
    EXPECT_DOUBLE_EQ(h.value(), 5.0);
    EXPECT_EQ(h.underflow(), 0u);
}

TEST(Histogram, ResetClearsEverything)
{
    StatRegistry reg;
    Histogram &h = reg.addHistogram("h", "", 0.0, 4.0, 2);
    h.sample(1.0);
    h.sample(100.0);
    reg.resetAll();
    EXPECT_EQ(h.count(), 0u);
    EXPECT_EQ(h.overflow(), 0u);
    EXPECT_EQ(h.bucketCount(0), 0u);
    EXPECT_DOUBLE_EQ(h.mean(), 0.0);
}

TEST(VectorStat, LanesByIndexAndName)
{
    StatRegistry reg;
    VectorStat &v = reg.addVector("v", "stall causes",
                                  {"load", "store", "compute"});
    v.add(0);
    v.add(0, 4.0);
    v.set(2, 7.0);
    EXPECT_EQ(v.size(), 3u);
    EXPECT_DOUBLE_EQ(v.lane(0), 5.0);
    EXPECT_DOUBLE_EQ(v.lane("load"), 5.0);
    EXPECT_DOUBLE_EQ(v.lane("compute"), 7.0);
    EXPECT_DOUBLE_EQ(v.lane("unknown"), 0.0);
    EXPECT_DOUBLE_EQ(v.value(), 12.0); // scalar summary = sum
}

TEST(Formula, RecomputesAfterResetAll)
{
    StatRegistry reg;
    Stat &busy = reg.add("busy", "");
    Stat &total = reg.add("total", "");
    reg.addFormula("util", "busy/total", [&busy, &total] {
        return total.value() == 0.0
            ? 0.0
            : busy.value() / total.value();
    });
    busy.set(30.0);
    total.set(60.0);
    EXPECT_DOUBLE_EQ(reg.find("util")->value(), 0.5);

    // A formula holds no state: after resetAll it reflects the
    // (reset) inputs instead of a stale cached value.
    reg.resetAll();
    EXPECT_DOUBLE_EQ(reg.find("util")->value(), 0.0);
    busy.set(10.0);
    total.set(40.0);
    EXPECT_DOUBLE_EQ(reg.find("util")->value(), 0.25);
}

TEST(Statistics, DumpJsonParsesBackWithAllKinds)
{
    StatRegistry reg;
    reg.add("obj.grp.scalar", "a scalar").set(42.0);
    Histogram &h =
        reg.addHistogram("obj.grp.hist", "a histogram", 0.0, 8.0, 4);
    h.sample(1.0);
    h.sample(3.0);
    h.sample(100.0);
    VectorStat &v =
        reg.addVector("obj.grp.vec", "a vector", {"a", "b"});
    v.add(0, 2.0);
    v.add(1, 3.0);
    reg.addFormula("obj.grp.formula", "a formula",
                   [] { return 0.125; });

    auto doc = parseJson(reg.dumpJsonString());
    ASSERT_TRUE(doc.isObject());
    EXPECT_EQ(doc.object.size(), 4u);

    const auto &scalar = doc.at("obj.grp.scalar");
    EXPECT_EQ(scalar.at("kind").string, "scalar");
    EXPECT_DOUBLE_EQ(scalar.at("value").number, 42.0);

    const auto &hist = doc.at("obj.grp.hist");
    EXPECT_EQ(hist.at("kind").string, "histogram");
    EXPECT_DOUBLE_EQ(hist.at("count").number, 3.0);
    EXPECT_DOUBLE_EQ(hist.at("overflow").number, 1.0);
    ASSERT_TRUE(hist.at("buckets").isArray());
    EXPECT_EQ(hist.at("buckets").array.size(), 4u);

    const auto &vec = doc.at("obj.grp.vec");
    EXPECT_EQ(vec.at("kind").string, "vector");
    EXPECT_DOUBLE_EQ(vec.at("lanes").at("a").number, 2.0);
    EXPECT_DOUBLE_EQ(vec.at("value").number, 5.0);

    const auto &formula = doc.at("obj.grp.formula");
    EXPECT_EQ(formula.at("kind").string, "formula");
    EXPECT_DOUBLE_EQ(formula.at("value").number, 0.125);
}

TEST(Statistics, DumpJsonEscapesDescriptions)
{
    StatRegistry reg;
    reg.add("s", "has \"quotes\" and\nnewlines").set(1.0);
    auto doc = parseJson(reg.dumpJsonString());
    EXPECT_EQ(doc.at("s").at("desc").string,
              "has \"quotes\" and\nnewlines");
}

/** @file Unit tests for the statistics registry. */

#include <gtest/gtest.h>

#include <sstream>

#include "sim/statistics.hh"

using namespace salam;

TEST(Statistics, AddAndAccumulate)
{
    StatRegistry reg;
    Stat &s = reg.add("acc.cycles", "total cycles");
    ++s;
    s += 9.0;
    EXPECT_DOUBLE_EQ(s.value(), 10.0);
    EXPECT_DOUBLE_EQ(reg.find("acc.cycles")->value(), 10.0);
}

TEST(Statistics, FindMissingReturnsNull)
{
    StatRegistry reg;
    EXPECT_EQ(reg.find("nope"), nullptr);
}

TEST(Statistics, DuplicateNamePanics)
{
    StatRegistry reg;
    reg.add("x", "first");
    EXPECT_DEATH(reg.add("x", "second"), "duplicate statistic");
}

TEST(Statistics, SumByPrefix)
{
    StatRegistry reg;
    reg.add("acc0.power.fu", "fu power").set(2.0);
    reg.add("acc0.power.reg", "reg power").set(3.0);
    reg.add("acc1.power.fu", "fu power").set(5.0);
    EXPECT_DOUBLE_EQ(reg.sumByPrefix("acc0.power."), 5.0);
    EXPECT_DOUBLE_EQ(reg.sumByPrefix("acc"), 10.0);
    EXPECT_DOUBLE_EQ(reg.sumByPrefix("zzz"), 0.0);
}

TEST(Statistics, DumpContainsNamesAndValues)
{
    StatRegistry reg;
    reg.add("a.b", "a stat").set(7.0);
    std::ostringstream os;
    reg.dump(os);
    EXPECT_NE(os.str().find("a.b"), std::string::npos);
    EXPECT_NE(os.str().find("7"), std::string::npos);
}

TEST(Statistics, ResetAllZeroes)
{
    StatRegistry reg;
    reg.add("a", "").set(1.0);
    reg.add("b", "").set(2.0);
    reg.resetAll();
    EXPECT_DOUBLE_EQ(reg.find("a")->value(), 0.0);
    EXPECT_DOUBLE_EQ(reg.find("b")->value(), 0.0);
}

/** @file Unit tests for constant folding, DCE, and CFG cleanup. */

#include <gtest/gtest.h>

#include "ir/interpreter.hh"
#include "ir/verifier.hh"
#include "opt/fold.hh"
#include "../ir/test_helpers.hh"

using namespace salam::ir;
using namespace salam::opt;

TEST(Fold, ConstantExpressionCollapses)
{
    Module mod("m");
    IRBuilder b(mod);
    Context &ctx = b.context();
    Function *fn = b.createFunction("f", ctx.i64());
    BasicBlock *entry = b.createBlock("entry");
    b.setInsertPoint(entry);
    Value *x = b.add(b.constI64(2), b.constI64(3), "x");
    Value *y = b.mul(x, b.constI64(10), "y");
    b.ret(y);

    EXPECT_TRUE(foldConstants(*fn));
    Verifier::verifyOrDie(*fn);
    // Only the ret should remain.
    EXPECT_EQ(entry->size(), 1u);
    FlatMemory mem;
    Interpreter interp(mem);
    EXPECT_EQ(interp.run(*fn, {}).asSInt(ctx.i64()), 50);
}

TEST(Fold, FpConstantFolding)
{
    Module mod("m");
    IRBuilder b(mod);
    Context &ctx = b.context();
    Function *fn = b.createFunction("f", ctx.doubleType());
    BasicBlock *entry = b.createBlock("entry");
    b.setInsertPoint(entry);
    Value *x = b.fmul(b.constDouble(1.5), b.constDouble(4.0), "x");
    b.ret(x);
    foldConstants(*fn);
    EXPECT_EQ(entry->size(), 1u);
    FlatMemory mem;
    Interpreter interp(mem);
    EXPECT_DOUBLE_EQ(interp.run(*fn, {}).asDouble(), 6.0);
}

TEST(Fold, ConstantBranchFoldsAndCfgSimplifies)
{
    Module mod("m");
    IRBuilder b(mod);
    Context &ctx = b.context();
    Function *fn = b.createFunction("f", ctx.i64());
    BasicBlock *entry = b.createBlock("entry");
    BasicBlock *then = b.createBlock("then");
    BasicBlock *els = b.createBlock("else");
    BasicBlock *merge = b.createBlock("merge");

    b.setInsertPoint(entry);
    Value *c = b.icmp(Predicate::SLT, b.constI64(1), b.constI64(2),
                      "c");
    b.condBr(c, then, els);
    b.setInsertPoint(then);
    b.br(merge);
    b.setInsertPoint(els);
    b.br(merge);
    b.setInsertPoint(merge);
    PhiInst *v = b.phi(ctx.i64(), "v");
    v->addIncoming(b.constI64(111), then);
    v->addIncoming(b.constI64(222), els);
    b.ret(v);

    cleanup(*fn);
    Verifier::verifyOrDie(*fn);
    // Everything folds into a single block returning 111.
    EXPECT_EQ(fn->numBlocks(), 1u);
    FlatMemory mem;
    Interpreter interp(mem);
    EXPECT_EQ(interp.run(*fn, {}).asSInt(ctx.i64()), 111);
}

TEST(Fold, DeadCodeIsRemoved)
{
    Module mod("m");
    IRBuilder b(mod);
    Context &ctx = b.context();
    Function *fn = b.createFunction("f", ctx.voidType());
    Argument *p = fn->addArgument(ctx.pointerTo(ctx.i64()), "p");
    BasicBlock *entry = b.createBlock("entry");
    b.setInsertPoint(entry);
    // Dead arithmetic chain.
    Value *x = b.add(b.constI64(1), b.constI64(2), "x");
    b.mul(x, x, "dead");
    // Live store.
    b.store(b.constI64(5), p);
    b.ret();

    EXPECT_TRUE(eliminateDeadCode(*fn));
    // Only store + ret remain.
    EXPECT_EQ(entry->size(), 2u);
    Verifier::verifyOrDie(*fn);
}

TEST(Fold, StoresAreNeverDead)
{
    Module mod("m");
    IRBuilder b(mod);
    Context &ctx = b.context();
    Function *fn = b.createFunction("f", ctx.voidType());
    Argument *p = fn->addArgument(ctx.pointerTo(ctx.i64()), "p");
    BasicBlock *entry = b.createBlock("entry");
    b.setInsertPoint(entry);
    b.store(b.constI64(5), p);
    b.ret();
    EXPECT_FALSE(eliminateDeadCode(*fn));
    EXPECT_EQ(entry->size(), 2u);
}

TEST(Fold, UnreachableBlockRemoved)
{
    Module mod("m");
    IRBuilder b(mod);
    Context &ctx = b.context();
    Function *fn = b.createFunction("f", ctx.voidType());
    BasicBlock *entry = b.createBlock("entry");
    BasicBlock *orphan = b.createBlock("orphan");
    b.setInsertPoint(entry);
    b.ret();
    b.setInsertPoint(orphan);
    b.ret();

    EXPECT_TRUE(simplifyCfg(*fn));
    EXPECT_EQ(fn->numBlocks(), 1u);
    EXPECT_EQ(fn->entry()->name(), "entry");
}

TEST(Fold, StraightLineChainsMerge)
{
    Module mod("m");
    IRBuilder b(mod);
    Context &ctx = b.context();
    Function *fn = b.createFunction("f", ctx.i64());
    BasicBlock *entry = b.createBlock("entry");
    BasicBlock *mid = b.createBlock("mid");
    BasicBlock *end = b.createBlock("end");
    b.setInsertPoint(entry);
    Value *x = b.add(b.constI64(1), b.constI64(1), "x");
    b.br(mid);
    b.setInsertPoint(mid);
    Value *y = b.add(x, x, "y");
    b.br(end);
    b.setInsertPoint(end);
    b.ret(y);

    EXPECT_TRUE(simplifyCfg(*fn));
    EXPECT_EQ(fn->numBlocks(), 1u);
    Verifier::verifyOrDie(*fn);
    FlatMemory mem;
    Interpreter interp(mem);
    EXPECT_EQ(interp.run(*fn, {}).asSInt(ctx.i64()), 4);
}

TEST(Fold, CleanupPreservesLoopSemantics)
{
    Module mod("m");
    IRBuilder b(mod);
    Function *fn = salam::test::buildSumSquares(b, 9);
    cleanup(*fn);
    Verifier::verifyOrDie(*fn);
    FlatMemory mem;
    Interpreter interp(mem);
    // sum k^2 for k in [0,9) = 204
    EXPECT_EQ(interp.run(*fn, {}).asSInt(mod.context().i64()), 204);
}

TEST(Fold, ReassociateConstantsCollapsesIvChains)
{
    Module mod("m");
    IRBuilder b(mod);
    Context &ctx = b.context();
    Function *fn = b.createFunction("f", ctx.i64());
    Argument *x = fn->addArgument(ctx.i64(), "x");
    BasicBlock *entry = b.createBlock("entry");
    b.setInsertPoint(entry);
    Value *a = b.add(x, b.constI64(1), "a");
    Value *c = b.add(a, b.constI64(2), "c");
    Value *d = b.add(c, b.constI64(3), "d");
    b.ret(d);

    EXPECT_TRUE(reassociateConstants(*fn));
    Verifier::verifyOrDie(*fn);
    // d must now be x + 6 directly.
    auto *ret = static_cast<ReturnInst *>(entry->terminator());
    auto *root = static_cast<BinaryOp *>(ret->value());
    EXPECT_EQ(root->lhs(), x);
    auto *cst = dynamic_cast<ConstantInt *>(root->rhs());
    ASSERT_NE(cst, nullptr);
    EXPECT_EQ(cst->sext(), 6);
}

TEST(Fold, BalanceReductionsBuildsTree)
{
    // Chain of 8 integer adds -> depth-3 tree, same result.
    Module mod("m");
    IRBuilder b(mod);
    Context &ctx = b.context();
    Function *fn = b.createFunction("f", ctx.i64());
    std::vector<Argument *> xs;
    for (int i = 0; i < 8; ++i)
        xs.push_back(fn->addArgument(ctx.i64(),
                                     "x" + std::to_string(i)));
    BasicBlock *entry = b.createBlock("entry");
    b.setInsertPoint(entry);
    Value *acc = xs[0];
    for (int i = 1; i < 8; ++i)
        acc = b.add(acc, xs[static_cast<std::size_t>(i)], "acc");
    b.ret(acc);

    EXPECT_TRUE(balanceReductions(*fn));
    Verifier::verifyOrDie(*fn);

    // Depth of the result expression must now be ~log2(8) = 3.
    std::function<int(const Value *)> depth =
        [&](const Value *v) -> int {
        const auto *inst = dynamic_cast<const Instruction *>(v);
        if (inst == nullptr || inst->opcode() != Opcode::Add)
            return 0;
        return 1 + std::max(depth(inst->operand(0)),
                            depth(inst->operand(1)));
    };
    auto *ret = static_cast<ReturnInst *>(entry->terminator());
    EXPECT_LE(depth(ret->value()), 4);

    // Semantics preserved.
    FlatMemory mem;
    Interpreter interp(mem);
    std::vector<RuntimeValue> args;
    std::int64_t expected = 0;
    for (int i = 0; i < 8; ++i) {
        args.push_back(RuntimeValue::fromInt(
            ctx.i64(), static_cast<std::uint64_t>(10 + i)));
        expected += 10 + i;
    }
    EXPECT_EQ(interp.run(*fn, args).asSInt(ctx.i64()), expected);
}

TEST(Fold, BalanceLeavesShortChainsAlone)
{
    Module mod("m");
    IRBuilder b(mod);
    Context &ctx = b.context();
    Function *fn = b.createFunction("f", ctx.i64());
    Argument *x = fn->addArgument(ctx.i64(), "x");
    Argument *y = fn->addArgument(ctx.i64(), "y");
    BasicBlock *entry = b.createBlock("entry");
    b.setInsertPoint(entry);
    Value *a = b.add(x, y, "a");
    Value *c = b.add(a, x, "c");
    b.ret(c);
    EXPECT_FALSE(balanceReductions(*fn));
}

TEST(Fold, BalanceIsIdempotent)
{
    Module mod("m");
    IRBuilder b(mod);
    Context &ctx = b.context();
    Function *fn = b.createFunction("f", ctx.doubleType());
    std::vector<Argument *> xs;
    for (int i = 0; i < 16; ++i)
        xs.push_back(fn->addArgument(ctx.doubleType(),
                                     "x" + std::to_string(i)));
    BasicBlock *entry = b.createBlock("entry");
    b.setInsertPoint(entry);
    Value *acc = xs[0];
    for (int i = 1; i < 16; ++i)
        acc = b.fadd(acc, xs[static_cast<std::size_t>(i)], "acc");
    b.ret(acc);

    EXPECT_TRUE(balanceReductions(*fn));
    std::size_t after_first = fn->instructionCount();
    EXPECT_FALSE(balanceReductions(*fn));
    EXPECT_EQ(fn->instructionCount(), after_first);
}

/** @file Unit tests for loop unrolling. */

#include <gtest/gtest.h>

#include "ir/interpreter.hh"
#include "ir/verifier.hh"
#include "opt/fold.hh"
#include "opt/pass_manager.hh"
#include "opt/unroll.hh"
#include "../ir/test_helpers.hh"

using namespace salam::ir;
using namespace salam::opt;

namespace
{

/** Run vecadd over fresh memory; return output vector c. */
std::vector<std::int32_t>
runVecAdd(Function &fn, int n)
{
    FlatMemory mem;
    const std::uint64_t a = 0x1000, b = 0x2000, c = 0x3000;
    for (int i = 0; i < n; ++i) {
        mem.writeI32(a + 4u * static_cast<unsigned>(i), 3 * i);
        mem.writeI32(b + 4u * static_cast<unsigned>(i), 1000 - i);
    }
    Interpreter interp(mem);
    interp.run(fn, {RuntimeValue::fromPointer(a),
                    RuntimeValue::fromPointer(b),
                    RuntimeValue::fromPointer(c)});
    std::vector<std::int32_t> out;
    for (int i = 0; i < n; ++i)
        out.push_back(mem.readI32(c + 4u * static_cast<unsigned>(i)));
    return out;
}

std::vector<std::int32_t>
expectedVecAdd(int n)
{
    std::vector<std::int32_t> out;
    for (int i = 0; i < n; ++i)
        out.push_back(3 * i + 1000 - i);
    return out;
}

} // namespace

class UnrollParam : public ::testing::TestWithParam<std::uint64_t>
{};

TEST_P(UnrollParam, VecAddSemanticsPreserved)
{
    std::uint64_t factor = GetParam();
    Module mod("m");
    IRBuilder b(mod);
    Function *fn = salam::test::buildVecAdd(b, 16);

    std::uint64_t applied =
        Unroller::unrollByLabel(*fn, "loop", factor);
    EXPECT_EQ(applied, factor);
    Verifier::verifyOrDie(*fn);
    EXPECT_EQ(runVecAdd(*fn, 16), expectedVecAdd(16));
}

INSTANTIATE_TEST_SUITE_P(Factors, UnrollParam,
                         ::testing::Values(1, 2, 4, 8, 16));

TEST(Unroll, FullUnrollRemovesLoop)
{
    Module mod("m");
    IRBuilder b(mod);
    Function *fn = salam::test::buildVecAdd(b, 8);
    Unroller::unrollByLabel(*fn, "loop", 8);
    Verifier::verifyOrDie(*fn);

    BasicBlock *loop = fn->findBlock("loop");
    ASSERT_NE(loop, nullptr);
    // No phis, unconditional terminator.
    EXPECT_TRUE(loop->phis().empty());
    auto *br = dynamic_cast<BranchInst *>(loop->terminator());
    ASSERT_NE(br, nullptr);
    EXPECT_FALSE(br->isConditional());
    EXPECT_EQ(runVecAdd(*fn, 8), expectedVecAdd(8));
}

TEST(Unroll, PartialUnrollGrowsBody)
{
    Module mod("m");
    IRBuilder b(mod);
    Function *fn = salam::test::buildVecAdd(b, 16);
    std::size_t before = fn->findBlock("loop")->size();
    Unroller::unrollByLabel(*fn, "loop", 4);
    std::size_t after = fn->findBlock("loop")->size();
    // Body instructions replicated ~4x (phis and branch not).
    EXPECT_GT(after, 3 * before);
    EXPECT_EQ(runVecAdd(*fn, 16), expectedVecAdd(16));
}

TEST(Unroll, NonDivisibleFactorIsClamped)
{
    Module mod("m");
    IRBuilder b(mod);
    Function *fn = salam::test::buildVecAdd(b, 12);
    // 8 does not divide 12; largest divisor <= 8 is 6.
    EXPECT_EQ(Unroller::unrollByLabel(*fn, "loop", 8), 6u);
    Verifier::verifyOrDie(*fn);
    EXPECT_EQ(runVecAdd(*fn, 12), expectedVecAdd(12));
}

TEST(Unroll, AccumulatorLoopFullUnroll)
{
    Module mod("m");
    IRBuilder b(mod);
    Function *fn = salam::test::buildSumSquares(b, 10);
    Unroller::unrollByLabel(*fn, "loop", 10);
    Verifier::verifyOrDie(*fn);
    FlatMemory mem;
    Interpreter interp(mem);
    EXPECT_EQ(interp.run(*fn, {}).asSInt(mod.context().i64()), 285);
}

TEST(Unroll, AccumulatorLoopPartialUnroll)
{
    Module mod("m");
    IRBuilder b(mod);
    Function *fn = salam::test::buildSumSquares(b, 12);
    EXPECT_EQ(Unroller::unrollByLabel(*fn, "loop", 3), 3u);
    Verifier::verifyOrDie(*fn);
    FlatMemory mem;
    Interpreter interp(mem);
    // sum k^2 for k in [0,12) = 506
    EXPECT_EQ(interp.run(*fn, {}).asSInt(mod.context().i64()), 506);
}

TEST(Unroll, UnknownLabelReturnsZero)
{
    Module mod("m");
    IRBuilder b(mod);
    Function *fn = salam::test::buildVecAdd(b, 8);
    EXPECT_EQ(Unroller::unrollByLabel(*fn, "nope", 2), 0u);
}

TEST(Unroll, PassManagerPipeline)
{
    Module mod("m");
    IRBuilder b(mod);
    Function *fn = salam::test::buildVecAdd(b, 16);
    PassManager::run(*fn, {PassSpec::unroll("loop", 4),
                           PassSpec::cleanup()});
    EXPECT_EQ(runVecAdd(*fn, 16), expectedVecAdd(16));
}

TEST(Unroll, PassManagerUnknownLoopIsFatal)
{
    Module mod("m");
    IRBuilder b(mod);
    Function *fn = salam::test::buildVecAdd(b, 16);
    EXPECT_EXIT(
        PassManager::run(*fn, {PassSpec::unroll("bogus", 4)}),
        ::testing::ExitedWithCode(1), "no simple loop");
}

TEST(Unroll, NestedLoopsFullyUnrollWithCleanup)
{
    // 2-level nest: outer 3 iterations, inner 4; body stores i*4+j.
    Module mod("m");
    IRBuilder b(mod);
    Context &ctx = b.context();
    Function *fn = b.createFunction("nest", ctx.voidType());
    Argument *out = fn->addArgument(ctx.pointerTo(ctx.i64()), "out");

    BasicBlock *entry = b.createBlock("entry");
    BasicBlock *outer = b.createBlock("outer");
    BasicBlock *inner = b.createBlock("inner");
    BasicBlock *latch = b.createBlock("latch");
    BasicBlock *exit = b.createBlock("exit");

    b.setInsertPoint(entry);
    b.br(outer);

    b.setInsertPoint(outer);
    PhiInst *i = b.phi(ctx.i64(), "i");
    b.br(inner);

    b.setInsertPoint(inner);
    PhiInst *j = b.phi(ctx.i64(), "j");
    Value *i4 = b.mul(i, b.constI64(4), "i4");
    Value *flat = b.add(i4, j, "flat");
    Value *slot = b.gep(ctx.i64(), out, flat, "slot");
    b.store(flat, slot);
    Value *jn = b.add(j, b.constI64(1), "j.next");
    Value *jc = b.icmp(Predicate::SLT, jn, b.constI64(4), "jc");
    b.condBr(jc, inner, latch);
    j->addIncoming(b.constI64(0), outer);
    j->addIncoming(jn, inner);

    b.setInsertPoint(latch);
    Value *in = b.add(i, b.constI64(1), "i.next");
    Value *ic = b.icmp(Predicate::SLT, in, b.constI64(3), "ic");
    b.condBr(ic, outer, exit);
    i->addIncoming(b.constI64(0), entry);
    i->addIncoming(in, latch);

    b.setInsertPoint(exit);
    b.ret();

    Verifier::verifyOrDie(*fn);
    Unroller::unrollAll(*fn);
    Verifier::verifyOrDie(*fn);

    // Everything should now be straight-line code: no simple loops.
    EXPECT_TRUE(LoopAnalysis::findLoops(*fn).empty());

    FlatMemory mem;
    Interpreter interp(mem);
    interp.run(*fn, {RuntimeValue::fromPointer(0x100)});
    for (std::int64_t k = 0; k < 12; ++k) {
        EXPECT_EQ(mem.readI64(0x100 + 8u * static_cast<unsigned>(k)),
                  k);
    }
}

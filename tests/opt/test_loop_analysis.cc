/** @file Unit tests for loop discovery and trip-count computation. */

#include <gtest/gtest.h>

#include "ir/ir_builder.hh"
#include "opt/loop_analysis.hh"
#include "../ir/test_helpers.hh"

using namespace salam::ir;
using namespace salam::opt;

TEST(LoopAnalysis, FindsCountedLoop)
{
    Module mod("m");
    IRBuilder b(mod);
    Function *fn = salam::test::buildVecAdd(b, 16);
    auto loops = LoopAnalysis::findLoops(*fn);
    ASSERT_EQ(loops.size(), 1u);
    EXPECT_EQ(loops[0].block->name(), "loop");
    EXPECT_EQ(loops[0].preheader->name(), "entry");
    EXPECT_EQ(loops[0].exit->name(), "exit");
    EXPECT_EQ(loops[0].tripCount, 16u);
    EXPECT_EQ(loops[0].phis.size(), 1u);
}

TEST(LoopAnalysis, AccumulatorPhisAreAccepted)
{
    Module mod("m");
    IRBuilder b(mod);
    Function *fn = salam::test::buildSumSquares(b, 10);
    auto loops = LoopAnalysis::findLoops(*fn);
    ASSERT_EQ(loops.size(), 1u);
    EXPECT_EQ(loops[0].tripCount, 10u);
    EXPECT_EQ(loops[0].phis.size(), 2u);
}

TEST(LoopAnalysis, TripCountWithStride)
{
    // for (i = 0; i != 64; i += 4): 16 trips.
    Module mod("m");
    IRBuilder b(mod);
    Context &ctx = b.context();
    Function *fn = b.createFunction("stride", ctx.voidType());
    BasicBlock *entry = b.createBlock("entry");
    BasicBlock *loop = b.createBlock("loop");
    BasicBlock *exit = b.createBlock("exit");
    b.setInsertPoint(entry);
    b.br(loop);
    b.setInsertPoint(loop);
    PhiInst *i = b.phi(ctx.i64(), "i");
    Value *inext = b.add(i, b.constI64(4), "i.next");
    Value *cond = b.icmp(Predicate::NE, inext, b.constI64(64), "c");
    b.condBr(cond, loop, exit);
    i->addIncoming(b.constI64(0), entry);
    i->addIncoming(inext, loop);
    b.setInsertPoint(exit);
    b.ret();

    auto loop_info = LoopAnalysis::analyze(*fn, fn->findBlock("loop"));
    ASSERT_TRUE(loop_info.has_value());
    EXPECT_EQ(loop_info->tripCount, 16u);
}

TEST(LoopAnalysis, DataDependentBoundIsRejected)
{
    // Bound comes from an argument: not statically countable.
    Module mod("m");
    IRBuilder b(mod);
    Context &ctx = b.context();
    Function *fn = b.createFunction("dyn", ctx.voidType());
    Argument *n = fn->addArgument(ctx.i64(), "n");
    BasicBlock *entry = b.createBlock("entry");
    BasicBlock *loop = b.createBlock("loop");
    BasicBlock *exit = b.createBlock("exit");
    b.setInsertPoint(entry);
    b.br(loop);
    b.setInsertPoint(loop);
    PhiInst *i = b.phi(ctx.i64(), "i");
    Value *inext = b.add(i, b.constI64(1), "i.next");
    Value *cond = b.icmp(Predicate::SLT, inext, n, "c");
    b.condBr(cond, loop, exit);
    i->addIncoming(b.constI64(0), entry);
    i->addIncoming(inext, loop);
    b.setInsertPoint(exit);
    b.ret();

    EXPECT_FALSE(
        LoopAnalysis::analyze(*fn, fn->findBlock("loop")).has_value());
}

TEST(LoopAnalysis, LoadInControlSliceIsRejected)
{
    // while (mem[i] != 0) style loops cannot be counted statically.
    Module mod("m");
    IRBuilder b(mod);
    Context &ctx = b.context();
    Function *fn = b.createFunction("memloop", ctx.voidType());
    Argument *p = fn->addArgument(ctx.pointerTo(ctx.i64()), "p");
    BasicBlock *entry = b.createBlock("entry");
    BasicBlock *loop = b.createBlock("loop");
    BasicBlock *exit = b.createBlock("exit");
    b.setInsertPoint(entry);
    b.br(loop);
    b.setInsertPoint(loop);
    PhiInst *i = b.phi(ctx.i64(), "i");
    Value *addr = b.gep(ctx.i64(), p, i, "addr");
    Value *v = b.load(addr, "v");
    Value *inext = b.add(i, b.constI64(1), "i.next");
    Value *cond = b.icmp(Predicate::NE, v, b.constI64(0), "c");
    b.condBr(cond, loop, exit);
    i->addIncoming(b.constI64(0), entry);
    i->addIncoming(inext, loop);
    b.setInsertPoint(exit);
    b.ret();

    EXPECT_FALSE(
        LoopAnalysis::analyze(*fn, fn->findBlock("loop")).has_value());
}

TEST(LoopAnalysis, NonLoopBlockIsRejected)
{
    Module mod("m");
    IRBuilder b(mod);
    Function *fn = salam::test::buildVecAdd(b, 8);
    EXPECT_FALSE(
        LoopAnalysis::analyze(*fn, fn->findBlock("entry")).has_value());
    EXPECT_FALSE(
        LoopAnalysis::analyze(*fn, fn->findBlock("exit")).has_value());
}

/** @file Unit tests for the stream buffer FIFO. */

#include <gtest/gtest.h>

#include "mem/stream_buffer.hh"
#include "test_harness.hh"

using namespace salam;
using namespace salam::mem;
using salam::test::TestRequester;

namespace
{

StreamBufferConfig
sbConfig(unsigned capacity)
{
    StreamBufferConfig cfg;
    cfg.writeRange = AddrRange{0x7000, 0x7100};
    cfg.readRange = AddrRange{0x7100, 0x7200};
    cfg.capacityBytes = capacity;
    cfg.latencyCycles = 1;
    return cfg;
}

} // namespace

TEST(StreamBuffer, FifoOrderPreserved)
{
    Simulation sim;
    auto &sb = sim.create<StreamBuffer>("sb", 10, sbConfig(64));
    TestRequester producer(sim, "prod");
    TestRequester consumer(sim, "cons");
    bindPorts(producer, sb.writePort());
    bindPorts(consumer, sb.readPort());

    producer.write(0, 0x7000, 0x11, 4);
    producer.write(10, 0x7000, 0x22, 4);
    auto *r1 = consumer.read(20, 0x7100, 4);
    auto *r2 = consumer.read(30, 0x7100, 4);
    sim.run();

    std::uint32_t a = 0, b = 0;
    r1->copyData(&a, 4);
    r2->copyData(&b, 4);
    EXPECT_EQ(a, 0x11u);
    EXPECT_EQ(b, 0x22u);
    EXPECT_EQ(sb.bytesStreamed(), 8u);
}

TEST(StreamBuffer, ReadBlocksUntilDataArrives)
{
    Simulation sim;
    auto &sb = sim.create<StreamBuffer>("sb", 10, sbConfig(64));
    TestRequester producer(sim, "prod");
    TestRequester consumer(sim, "cons");
    bindPorts(producer, sb.writePort());
    bindPorts(consumer, sb.readPort());

    // Read first; write arrives much later.
    auto *r = consumer.read(0, 0x7100, 4);
    producer.write(500, 0x7000, 0x77, 4);
    sim.run();

    EXPECT_GE(consumer.arrivalOf(r), 500u);
    std::uint32_t got = 0;
    r->copyData(&got, 4);
    EXPECT_EQ(got, 0x77u);
    EXPECT_GT(sb.consumerStallTicks(), 0u);
}

TEST(StreamBuffer, WriteBlocksWhenFull)
{
    Simulation sim;
    auto &sb = sim.create<StreamBuffer>("sb", 10, sbConfig(8));
    TestRequester producer(sim, "prod");
    TestRequester consumer(sim, "cons");
    bindPorts(producer, sb.writePort());
    bindPorts(consumer, sb.readPort());

    // Fill the 8-byte FIFO, then a third write must wait for a read.
    auto *w1 = producer.write(0, 0x7000, 1, 4);
    auto *w2 = producer.write(0, 0x7000, 2, 4);
    auto *w3 = producer.write(0, 0x7000, 3, 4);
    consumer.read(1000, 0x7100, 4);
    sim.run();

    EXPECT_LE(producer.arrivalOf(w1), 20u);
    EXPECT_LE(producer.arrivalOf(w2), 20u);
    EXPECT_GE(producer.arrivalOf(w3), 1000u);
    EXPECT_GT(sb.producerStallTicks(), 0u);
}

TEST(StreamBuffer, BackpressurePipelinesProducerConsumer)
{
    // Producer is fast, consumer slow; FIFO occupancy bounded by
    // capacity and nothing is lost.
    Simulation sim;
    auto &sb = sim.create<StreamBuffer>("sb", 10, sbConfig(16));
    TestRequester producer(sim, "prod");
    TestRequester consumer(sim, "cons");
    bindPorts(producer, sb.writePort());
    bindPorts(consumer, sb.readPort());

    std::vector<PacketPtr> reads;
    for (unsigned i = 0; i < 16; ++i) {
        producer.write(i * 10, 0x7000, i, 4);
        reads.push_back(consumer.read(i * 100, 0x7100, 4));
    }
    sim.run();
    for (unsigned i = 0; i < 16; ++i) {
        std::uint32_t got = ~0u;
        reads[i]->copyData(&got, 4);
        EXPECT_EQ(got, i);
    }
    EXPECT_EQ(sb.bytesBuffered(), 0u);
    EXPECT_EQ(sb.bytesStreamed(), 64u);
}

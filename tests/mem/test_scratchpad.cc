/** @file Unit tests for the scratchpad model. */

#include <gtest/gtest.h>

#include "mem/scratchpad.hh"
#include "test_harness.hh"

using namespace salam;
using namespace salam::mem;
using salam::test::TestRequester;

namespace
{

ScratchpadConfig
spmConfig(std::uint64_t base, std::uint64_t size)
{
    ScratchpadConfig cfg;
    cfg.range = AddrRange{base, base + size};
    cfg.latencyCycles = 1;
    cfg.readPorts = 2;
    cfg.writePorts = 2;
    cfg.banks = 1;
    cfg.numPorts = 1;
    return cfg;
}

} // namespace

TEST(Scratchpad, WriteThenReadReturnsData)
{
    Simulation sim;
    auto &spm = sim.create<Scratchpad>("spm", 10,
                                       spmConfig(0x1000, 4096));
    TestRequester req(sim);
    bindPorts(req, spm.port(0));

    auto *w = req.write(0, 0x1000, 0xDEADBEEF, 4);
    auto *r = req.read(50, 0x1000, 4);
    sim.run();

    ASSERT_EQ(req.responses.size(), 2u);
    EXPECT_EQ(w->cmd(), MemCmd::WriteResp);
    EXPECT_EQ(r->cmd(), MemCmd::ReadResp);
    std::uint32_t value = 0;
    r->copyData(&value, 4);
    EXPECT_EQ(value, 0xDEADBEEFu);
    EXPECT_EQ(spm.readCount(), 1u);
    EXPECT_EQ(spm.writeCount(), 1u);
}

TEST(Scratchpad, BackdoorMatchesTimingPath)
{
    Simulation sim;
    auto &spm = sim.create<Scratchpad>("spm", 10,
                                       spmConfig(0, 1024));
    std::uint64_t magic = 0x0123456789ABCDEFull;
    spm.backdoorWrite(0x10, &magic, 8);

    TestRequester req(sim);
    bindPorts(req, spm.port(0));
    auto *r = req.read(0, 0x10, 8);
    sim.run();

    std::uint64_t got = 0;
    r->copyData(&got, 8);
    EXPECT_EQ(got, magic);
}

TEST(Scratchpad, LatencyIsRespected)
{
    Simulation sim;
    auto cfg = spmConfig(0, 1024);
    cfg.latencyCycles = 3;
    auto &spm = sim.create<Scratchpad>("spm", 10, cfg);
    TestRequester req(sim);
    bindPorts(req, spm.port(0));

    auto *r = req.read(0, 0, 4);
    sim.run();
    // Serviced at cycle 0's edge, response 3 cycles later.
    EXPECT_EQ(req.arrivalOf(r), 30u);
}

TEST(Scratchpad, PortLimitSerializesBursts)
{
    // 1 read port: 4 simultaneous reads take 4 cycles to issue.
    Simulation sim;
    auto cfg = spmConfig(0, 1024);
    cfg.readPorts = 1;
    auto &spm = sim.create<Scratchpad>("spm1", 10, cfg);
    TestRequester req(sim);
    bindPorts(req, spm.port(0));

    std::vector<PacketPtr> pkts;
    for (int i = 0; i < 4; ++i)
        pkts.push_back(req.read(0, 4u * static_cast<unsigned>(i), 4));
    sim.run();

    std::vector<Tick> arrivals;
    for (auto *p : pkts)
        arrivals.push_back(req.arrivalOf(p));
    EXPECT_EQ(arrivals, (std::vector<Tick>{10, 20, 30, 40}));

    // 4 read ports: all four arrive together.
    Simulation sim2;
    auto cfg4 = spmConfig(0, 1024);
    cfg4.readPorts = 4;
    auto &spm4 = sim2.create<Scratchpad>("spm4", 10, cfg4);
    TestRequester req4(sim2);
    bindPorts(req4, spm4.port(0));
    std::vector<PacketPtr> pkts4;
    for (int i = 0; i < 4; ++i)
        pkts4.push_back(
            req4.read(0, 4u * static_cast<unsigned>(i), 4));
    sim2.run();
    for (auto *p : pkts4)
        EXPECT_EQ(req4.arrivalOf(p), 10u);
    (void)spm;
    (void)spm4;
}

TEST(Scratchpad, ReadAndWritePortsAreIndependent)
{
    Simulation sim;
    auto cfg = spmConfig(0, 1024);
    cfg.readPorts = 1;
    cfg.writePorts = 1;
    auto &spm = sim.create<Scratchpad>("spm", 10, cfg);
    TestRequester req(sim);
    bindPorts(req, spm.port(0));

    // One read and one write in the same cycle both complete at +1.
    auto *r = req.read(0, 0, 4);
    auto *w = req.write(0, 64, 7, 4);
    sim.run();
    EXPECT_EQ(req.arrivalOf(r), 10u);
    EXPECT_EQ(req.arrivalOf(w), 10u);
    (void)spm;
}

TEST(Scratchpad, BankConflictsSerialize)
{
    // 2 banks, word interleaved; two reads to the same bank
    // serialize, two reads to different banks proceed together.
    Simulation sim;
    auto cfg = spmConfig(0, 1024);
    cfg.readPorts = 4;
    cfg.banks = 2;
    cfg.wordBytes = 4;
    auto &spm = sim.create<Scratchpad>("spm", 10, cfg);
    TestRequester req(sim);
    bindPorts(req, spm.port(0));

    auto *a = req.read(0, 0, 4);  // bank 0
    auto *b = req.read(0, 8, 4);  // bank 0 (word 2)
    auto *c = req.read(0, 4, 4);  // bank 1
    sim.run();
    EXPECT_EQ(req.arrivalOf(a), 10u);
    EXPECT_EQ(req.arrivalOf(c), 10u);
    EXPECT_EQ(req.arrivalOf(b), 20u);
    (void)spm;
}

TEST(Scratchpad, MultiplePortsDeliverToRightRequester)
{
    Simulation sim;
    auto cfg = spmConfig(0, 1024);
    cfg.numPorts = 2;
    auto &spm = sim.create<Scratchpad>("spm", 10, cfg);
    TestRequester req0(sim, "r0");
    TestRequester req1(sim, "r1");
    bindPorts(req0, spm.port(0));
    bindPorts(req1, spm.port(1));

    auto *a = req0.read(0, 0, 4);
    auto *b = req1.read(0, 4, 4);
    sim.run();
    EXPECT_EQ(req0.responses.size(), 1u);
    EXPECT_EQ(req1.responses.size(), 1u);
    EXPECT_EQ(req0.responses[0].pkt, a);
    EXPECT_EQ(req1.responses[0].pkt, b);
}

TEST(Scratchpad, OutOfRangeAccessPanics)
{
    Simulation sim;
    auto &spm = sim.create<Scratchpad>("spm", 10,
                                       spmConfig(0x1000, 64));
    TestRequester req(sim);
    bindPorts(req, spm.port(0));
    req.read(0, 0x2000, 4);
    EXPECT_DEATH(sim.run(), "assertion");
}

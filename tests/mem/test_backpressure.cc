/**
 * @file
 * Crossbar backpressure edge cases: requestsPerCycle throttling
 * under simultaneous requesters, sender-state response routing with
 * interleaved outstanding requests, retry-after-refusal from a
 * saturated downstream device, and per-requester credit limits.
 */

#include <gtest/gtest.h>

#include "mem/crossbar.hh"
#include "mem/scratchpad.hh"
#include "test_harness.hh"

using namespace salam;
using namespace salam::mem;
using salam::test::RetryRequester;
using salam::test::TestRequester;

namespace
{

ScratchpadConfig
spmConfig(std::uint64_t base, std::uint64_t size)
{
    ScratchpadConfig cfg;
    cfg.range = AddrRange{base, base + size};
    return cfg;
}

/**
 * A downstream device that refuses every request while stalled,
 * then services reads with a fixed latency once released. Models a
 * saturated device exercising the crossbar's downstream-retry path
 * (Crossbar::DownstreamPort::recvReqRetry -> pumpRequests).
 */
class StallableDevice
{
  public:
    StallableDevice(Simulation &sim, Tick latency)
        : sim(sim), latency(latency), port(*this)
    {}

    class Port : public ResponsePort
    {
      public:
        explicit Port(StallableDevice &owner)
            : ResponsePort("stallable"), owner(owner)
        {}

        bool
        recvTimingReq(PacketPtr pkt) override
        {
            if (owner.stalled) {
                ++owner.refused;
                return false;
            }
            ++owner.accepted;
            owner.sim.eventQueue().schedule(
                owner.sim.curTick() + owner.latency, [this, pkt] {
                    pkt->makeResponse();
                    bool ok = sendTimingResp(pkt);
                    SALAM_ASSERT(ok);
                });
            return true;
        }

        void recvRespRetry() override {}

      private:
        StallableDevice &owner;
    };

    /** Accept requests again and wake the refused upstream. */
    void
    release()
    {
        stalled = false;
        port.sendReqRetry();
    }

    Simulation &sim;
    Tick latency;
    Port port;
    bool stalled = true;
    int refused = 0;
    int accepted = 0;
};

} // namespace

/**
 * requestsPerCycle throttling with several requesters hitting the
 * crossbar in the same cycle: exactly one grant per cycle, spread
 * round-robin, and every request eventually forwarded.
 */
TEST(CrossbarBackpressure, ThroughputLimitUnderSimultaneousLoad)
{
    Simulation sim;
    CrossbarConfig xcfg;
    xcfg.requestsPerCycle = 1;
    auto &xbar = sim.create<Crossbar>("xbar", 10, xcfg);
    auto scfg = spmConfig(0, 0x1000);
    scfg.readPorts = 8;
    auto &spm = sim.create<Scratchpad>("spm", 10, scfg);
    xbar.connectDevice(spm.port(0), scfg.range);

    TestRequester r0(sim, "r0");
    TestRequester r1(sim, "r1");
    TestRequester r2(sim, "r2");
    bindPorts(r0, xbar.addRequester("r0"));
    bindPorts(r1, xbar.addRequester("r1"));
    bindPorts(r2, xbar.addRequester("r2"));

    auto *p0 = r0.read(0, 0x00, 4);
    auto *p1 = r1.read(0, 0x10, 4);
    auto *p2 = r2.read(0, 0x20, 4);
    sim.run();

    std::vector<Tick> arrivals = {r0.arrivalOf(p0), r1.arrivalOf(p1),
                                  r2.arrivalOf(p2)};
    for (Tick t : arrivals)
        EXPECT_GT(t, 0u);
    std::sort(arrivals.begin(), arrivals.end());
    // One grant per cycle: the three round trips complete exactly
    // one clock apart.
    EXPECT_EQ(arrivals[1] - arrivals[0], 10u);
    EXPECT_EQ(arrivals[2] - arrivals[1], 10u);
    EXPECT_EQ(xbar.forwardedRequests(), 3u);
}

/**
 * Sender-state response routing with interleaved outstanding
 * requests: two requesters each keep two reads in flight to two
 * devices with very different latencies, so responses return out of
 * request order and interleaved across requesters. Every response
 * must land at its own requester with its own packet.
 */
TEST(CrossbarBackpressure, SenderStateRoutesInterleavedResponses)
{
    Simulation sim;
    auto &xbar = sim.create<Crossbar>("xbar", 10);
    auto fast_cfg = spmConfig(0x1000, 0x1000);
    fast_cfg.latencyCycles = 1;
    fast_cfg.readPorts = 4;
    auto slow_cfg = spmConfig(0x2000, 0x1000);
    slow_cfg.latencyCycles = 20;
    slow_cfg.readPorts = 4;
    auto &fast = sim.create<Scratchpad>("fast", 10, fast_cfg);
    auto &slow = sim.create<Scratchpad>("slow", 10, slow_cfg);
    xbar.connectDevice(fast.port(0), fast_cfg.range);
    xbar.connectDevice(slow.port(0), slow_cfg.range);

    TestRequester r0(sim, "r0");
    TestRequester r1(sim, "r1");
    bindPorts(r0, xbar.addRequester("r0"));
    bindPorts(r1, xbar.addRequester("r1"));

    // Each requester: one slow read issued FIRST, one fast read
    // second. The fast response overtakes the slow one.
    auto *slow0 = r0.read(0, 0x2000, 4);
    auto *fast0 = r0.read(0, 0x1000, 4);
    auto *slow1 = r1.read(0, 0x2010, 4);
    auto *fast1 = r1.read(0, 0x1010, 4);
    sim.run();

    ASSERT_EQ(r0.responses.size(), 2u);
    ASSERT_EQ(r1.responses.size(), 2u);
    // Out-of-order completion...
    EXPECT_LT(r0.arrivalOf(fast0), r0.arrivalOf(slow0));
    EXPECT_LT(r1.arrivalOf(fast1), r1.arrivalOf(slow1));
    // ...with every packet at its own requester (no cross-delivery:
    // arrivalOf is 0 for a packet the port never received).
    EXPECT_EQ(r0.arrivalOf(fast1), 0u);
    EXPECT_EQ(r0.arrivalOf(slow1), 0u);
    EXPECT_EQ(r1.arrivalOf(fast0), 0u);
    EXPECT_EQ(r1.arrivalOf(slow0), 0u);
}

/**
 * A saturated downstream device refuses the forwarded request; the
 * crossbar must hold the transaction, wait for the device's retry
 * signal, and re-forward — no drop, no duplicate.
 */
TEST(CrossbarBackpressure, RetriesAfterDownstreamRefusal)
{
    Simulation sim;
    auto &xbar = sim.create<Crossbar>("xbar", 10);
    StallableDevice dev(sim, 10);
    xbar.connectDevice(dev.port, AddrRange{0, 0x1000});
    TestRequester req(sim);
    bindPorts(req, xbar.addRequester("r"));

    auto *r = req.read(0, 0x10, 4);
    // Release the device well after the refusal.
    sim.eventQueue().schedule(200, [&dev] { dev.release(); });
    sim.run();

    EXPECT_GE(dev.refused, 1);
    EXPECT_EQ(dev.accepted, 1);
    ASSERT_EQ(req.responses.size(), 1u);
    // Accepted only after release at tick 200 + device latency.
    EXPECT_GE(req.arrivalOf(r), 210u);
}

/**
 * Per-requester credits on the crossbar: a 1-deep credit pool
 * refuses the second in-flight request until the first response
 * returns, and the retried request is flagged as credit-stalled.
 */
TEST(CrossbarBackpressure, CreditLimitThrottlesRequester)
{
    Simulation sim;
    CrossbarConfig xcfg;
    xcfg.maxOutstandingPerRequester = 1;
    auto &xbar = sim.create<Crossbar>("xbar", 10, xcfg);
    auto scfg = spmConfig(0, 0x1000);
    scfg.readPorts = 4;
    auto &spm = sim.create<Scratchpad>("spm", 10, scfg);
    xbar.connectDevice(spm.port(0), scfg.range);
    RetryRequester req(sim);
    bindPorts(req, xbar.addRequester("r"));

    auto *r0 = req.read(0, 0x00, 4);
    auto *r1 = req.read(0, 0x10, 4);
    sim.run();

    EXPECT_GE(req.retries, 1);
    EXPECT_GE(xbar.creditStallCount(), 1u);
    ASSERT_EQ(req.responses.size(), 2u);
    EXPECT_GT(req.arrivalOf(r1), req.arrivalOf(r0));
    EXPECT_TRUE(r1->serviceFlags & svcCreditStall);

    // An independent requester is not throttled by r's credits.
    EXPECT_EQ(req.blocked.size(), 0u);
}

/** Credits release one per response: a stream of N requests through
 * a 2-deep window completes in submission order. */
TEST(CrossbarBackpressure, CreditWindowPipelines)
{
    Simulation sim;
    CrossbarConfig xcfg;
    xcfg.maxOutstandingPerRequester = 2;
    auto &xbar = sim.create<Crossbar>("xbar", 10, xcfg);
    auto scfg = spmConfig(0, 0x1000);
    scfg.readPorts = 4;
    auto &spm = sim.create<Scratchpad>("spm", 10, scfg);
    xbar.connectDevice(spm.port(0), scfg.range);
    RetryRequester req(sim);
    bindPorts(req, xbar.addRequester("r"));

    std::vector<PacketPtr> pkts;
    for (int i = 0; i < 6; ++i)
        pkts.push_back(req.read(0, 4u * static_cast<unsigned>(i), 4));
    sim.run();

    ASSERT_EQ(req.responses.size(), 6u);
    Tick prev = 0;
    for (auto *p : pkts) {
        Tick t = req.arrivalOf(p);
        EXPECT_GE(t, prev);
        prev = t;
    }
    EXPECT_GE(req.retries, 1);
}

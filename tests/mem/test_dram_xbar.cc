/** @file Unit tests for SimpleDram and Crossbar. */

#include <gtest/gtest.h>

#include "mem/crossbar.hh"
#include "mem/scratchpad.hh"
#include "mem/simple_dram.hh"
#include "test_harness.hh"

using namespace salam;
using namespace salam::mem;
using salam::test::TestRequester;

namespace
{

DramConfig
dramConfig(std::uint64_t base, std::uint64_t size)
{
    DramConfig cfg;
    cfg.range = AddrRange{base, base + size};
    cfg.accessLatency = 40'000;
    cfg.bytesPerTick = 0.0128;
    return cfg;
}

} // namespace

TEST(SimpleDram, ReadAfterWrite)
{
    Simulation sim;
    auto &dram = sim.create<SimpleDram>("dram", 1000,
                                        dramConfig(0x8000'0000, 1 << 20));
    TestRequester req(sim);
    bindPorts(req, dram.port());

    auto *w = req.write(0, 0x8000'0000, 0xABCD, 4);
    auto *r = req.read(200'000, 0x8000'0000, 4);
    sim.run();

    EXPECT_EQ(w->cmd(), MemCmd::WriteResp);
    std::uint32_t got = 0;
    r->copyData(&got, 4);
    EXPECT_EQ(got, 0xABCDu);
}

TEST(SimpleDram, FlatLatencyForSmallAccess)
{
    Simulation sim;
    auto &dram = sim.create<SimpleDram>("dram", 1000,
                                        dramConfig(0, 1 << 20));
    TestRequester req(sim);
    bindPorts(req, dram.port());
    auto *r = req.read(0, 0, 4);
    sim.run();
    // 4 bytes / 0.0128 B/tick = 312 ticks + 40000 latency.
    Tick arrival = req.arrivalOf(r);
    EXPECT_GE(arrival, 40'000u);
    EXPECT_LE(arrival, 41'000u);
}

TEST(SimpleDram, BandwidthLimitsStreaming)
{
    Simulation sim;
    auto &dram = sim.create<SimpleDram>("dram", 1000,
                                        dramConfig(0, 1 << 20));
    TestRequester req(sim);
    bindPorts(req, dram.port());

    // Issue 16 KiB of reads at once; sustained bandwidth should
    // dominate: 16384 B / 0.0128 B/tick = 1.28M ticks.
    std::vector<PacketPtr> pkts;
    for (int i = 0; i < 16; ++i) {
        pkts.push_back(
            req.read(0, 1024u * static_cast<unsigned>(i), 1024));
    }
    sim.run();
    Tick last = 0;
    for (auto *p : pkts)
        last = std::max(last, req.arrivalOf(p));
    double expected = 16.0 * 1024.0 / 0.0128;
    EXPECT_GT(static_cast<double>(last), 0.9 * expected);
    EXPECT_LT(static_cast<double>(last), 1.2 * expected);
    EXPECT_EQ(dram.bytesTransferred(), 16u * 1024u);
}

TEST(Crossbar, RoutesByAddress)
{
    Simulation sim;
    auto &xbar = sim.create<Crossbar>("xbar", 10);

    ScratchpadConfig cfg_a;
    cfg_a.range = AddrRange{0x1000, 0x2000};
    auto &spm_a = sim.create<Scratchpad>("spm_a", 10, cfg_a);
    ScratchpadConfig cfg_b;
    cfg_b.range = AddrRange{0x2000, 0x3000};
    auto &spm_b = sim.create<Scratchpad>("spm_b", 10, cfg_b);

    xbar.connectDevice(spm_a.port(0), cfg_a.range);
    xbar.connectDevice(spm_b.port(0), cfg_b.range);

    TestRequester req(sim);
    bindPorts(req, xbar.addRequester("tester"));

    std::uint64_t magic_a = 0xAAAA, magic_b = 0xBBBB;
    spm_a.backdoorWrite(0x1100, &magic_a, 8);
    spm_b.backdoorWrite(0x2100, &magic_b, 8);

    auto *ra = req.read(0, 0x1100, 8);
    auto *rb = req.read(0, 0x2100, 8);
    sim.run();

    std::uint64_t got = 0;
    ra->copyData(&got, 8);
    EXPECT_EQ(got, magic_a);
    rb->copyData(&got, 8);
    EXPECT_EQ(got, magic_b);
    EXPECT_EQ(xbar.forwardedRequests(), 2u);
}

TEST(Crossbar, MultipleRequestersGetOwnResponses)
{
    Simulation sim;
    auto &xbar = sim.create<Crossbar>("xbar", 10);
    ScratchpadConfig cfg;
    cfg.range = AddrRange{0, 0x1000};
    cfg.numPorts = 1;
    auto &spm = sim.create<Scratchpad>("spm", 10, cfg);
    xbar.connectDevice(spm.port(0), cfg.range);

    TestRequester r0(sim, "r0");
    TestRequester r1(sim, "r1");
    bindPorts(r0, xbar.addRequester("r0"));
    bindPorts(r1, xbar.addRequester("r1"));

    auto *p0 = r0.read(0, 0x10, 4);
    auto *p1 = r1.read(0, 0x20, 4);
    sim.run();
    ASSERT_EQ(r0.responses.size(), 1u);
    ASSERT_EQ(r1.responses.size(), 1u);
    EXPECT_EQ(r0.responses[0].pkt, p0);
    EXPECT_EQ(r1.responses[0].pkt, p1);
}

TEST(Crossbar, AddsForwardingLatency)
{
    Simulation sim;
    CrossbarConfig xcfg;
    xcfg.forwardLatency = 2;
    xcfg.responseLatency = 2;
    auto &xbar = sim.create<Crossbar>("xbar", 10, xcfg);
    ScratchpadConfig cfg;
    cfg.range = AddrRange{0, 0x1000};
    auto &spm = sim.create<Scratchpad>("spm", 10, cfg);
    xbar.connectDevice(spm.port(0), cfg.range);
    TestRequester req(sim);
    bindPorts(req, xbar.addRequester("r"));

    auto *r = req.read(0, 0, 4);
    sim.run();
    // 2 cycles in, 1 cycle SPM, 2 cycles back = 5 cycles @ 10 ticks.
    EXPECT_EQ(req.arrivalOf(r), 50u);
}

TEST(Crossbar, UnroutableAddressPanics)
{
    Simulation sim;
    auto &xbar = sim.create<Crossbar>("xbar", 10);
    ScratchpadConfig cfg;
    cfg.range = AddrRange{0, 0x100};
    auto &spm = sim.create<Scratchpad>("spm", 10, cfg);
    xbar.connectDevice(spm.port(0), cfg.range);
    TestRequester req(sim);
    bindPorts(req, xbar.addRequester("r"));
    EXPECT_DEATH(
        {
            req.read(0, 0x9999, 4);
            sim.run();
        },
        "no route");
}

TEST(Crossbar, OverlappingRangesAreFatal)
{
    Simulation sim;
    auto &xbar = sim.create<Crossbar>("xbar", 10);
    ScratchpadConfig cfg;
    cfg.range = AddrRange{0, 0x100};
    auto &spm1 = sim.create<Scratchpad>("spm1", 10, cfg);
    ScratchpadConfig cfg2;
    cfg2.range = AddrRange{0x80, 0x180};
    auto &spm2 = sim.create<Scratchpad>("spm2", 10, cfg2);
    xbar.connectDevice(spm1.port(0), cfg.range);
    EXPECT_EXIT(xbar.connectDevice(spm2.port(0), cfg2.range),
                ::testing::ExitedWithCode(1), "overlapping");
}

TEST(Crossbar, ThroughputLimitSerializes)
{
    Simulation sim;
    CrossbarConfig xcfg;
    xcfg.requestsPerCycle = 1;
    auto &xbar = sim.create<Crossbar>("xbar", 10, xcfg);
    ScratchpadConfig cfg;
    cfg.range = AddrRange{0, 0x1000};
    cfg.readPorts = 8;
    auto &spm = sim.create<Scratchpad>("spm", 10, cfg);
    xbar.connectDevice(spm.port(0), cfg.range);
    TestRequester req(sim);
    bindPorts(req, xbar.addRequester("r"));

    std::vector<PacketPtr> pkts;
    for (int i = 0; i < 3; ++i)
        pkts.push_back(req.read(0, 4u * static_cast<unsigned>(i), 4));
    sim.run();

    std::vector<Tick> arrivals;
    for (auto *p : pkts)
        arrivals.push_back(req.arrivalOf(p));
    std::sort(arrivals.begin(), arrivals.end());
    // One request forwarded per cycle -> arrivals 1 cycle apart.
    EXPECT_EQ(arrivals[1] - arrivals[0], 10u);
    EXPECT_EQ(arrivals[2] - arrivals[1], 10u);
}

/** @file Shared memory-system test fixtures. */

#ifndef SALAM_TESTS_MEM_TEST_HARNESS_HH
#define SALAM_TESTS_MEM_TEST_HARNESS_HH

#include <deque>
#include <map>
#include <vector>

#include "mem/port.hh"
#include "sim/simulation.hh"

namespace salam::test
{

/** A scripted requester that records response arrival times. */
class TestRequester : public mem::RequestPort
{
  public:
    explicit TestRequester(Simulation &sim, std::string name = "req")
        : mem::RequestPort(std::move(name)), sim(sim)
    {}

    struct Response
    {
        mem::PacketPtr pkt;
        Tick at;
    };

    bool
    recvTimingResp(mem::PacketPtr pkt) override
    {
        responses.push_back(Response{pkt, sim.curTick()});
        return true;
    }

    void recvReqRetry() override { ++retries; }

    /** Issue a read at tick @p when. */
    mem::PacketPtr
    read(Tick when, std::uint64_t addr, unsigned size)
    {
        auto *pkt = new mem::Packet(mem::MemCmd::ReadReq, addr, size);
        sim.eventQueue().schedule(when, [this, pkt] {
            bool ok = sendTimingReq(pkt);
            SALAM_ASSERT(ok);
        });
        return pkt;
    }

    /** Issue a write of @p value at tick @p when. */
    mem::PacketPtr
    write(Tick when, std::uint64_t addr, std::uint64_t value,
          unsigned size)
    {
        auto *pkt = new mem::Packet(mem::MemCmd::WriteReq, addr, size);
        pkt->setData(&value, size);
        sim.eventQueue().schedule(when, [this, pkt] {
            bool ok = sendTimingReq(pkt);
            SALAM_ASSERT(ok);
        });
        return pkt;
    }

    /** Response arrival tick for @p pkt; 0 when not received. */
    Tick
    arrivalOf(mem::PacketPtr pkt) const
    {
        for (const auto &r : responses) {
            if (r.pkt == pkt)
                return r.at;
        }
        return 0;
    }

    ~TestRequester() override
    {
        for (auto &r : responses)
            delete r.pkt;
    }

    std::vector<Response> responses;
    int retries = 0;

  private:
    Simulation &sim;
};

/**
 * A requester that honors backpressure: a refused send parks the
 * packet and recvReqRetry() re-issues in FIFO order. TestRequester
 * SALAM_ASSERTs on refusal, so credit/saturation tests (where
 * refusal is the point) use this one.
 */
class RetryRequester : public mem::RequestPort
{
  public:
    explicit RetryRequester(Simulation &sim,
                            std::string name = "retry_req")
        : mem::RequestPort(std::move(name)), sim(sim)
    {}

    struct Response
    {
        mem::PacketPtr pkt;
        Tick at;
    };

    bool
    recvTimingResp(mem::PacketPtr pkt) override
    {
        responses.push_back(Response{pkt, sim.curTick()});
        return true;
    }

    void
    recvReqRetry() override
    {
        ++retries;
        while (!blocked.empty()) {
            mem::PacketPtr pkt = blocked.front();
            if (!sendTimingReq(pkt))
                return; // still refused; another retry is owed
            blocked.pop_front();
        }
    }

    /** Issue a read at tick @p when, queueing on refusal. */
    mem::PacketPtr
    read(Tick when, std::uint64_t addr, unsigned size)
    {
        auto *pkt = new mem::Packet(mem::MemCmd::ReadReq, addr, size);
        sim.eventQueue().schedule(when, [this, pkt] {
            if (!blocked.empty() || !sendTimingReq(pkt))
                blocked.push_back(pkt);
        });
        return pkt;
    }

    /** Response arrival tick for @p pkt; 0 when not received. */
    Tick
    arrivalOf(mem::PacketPtr pkt) const
    {
        for (const auto &r : responses) {
            if (r.pkt == pkt)
                return r.at;
        }
        return 0;
    }

    ~RetryRequester() override
    {
        for (auto &r : responses)
            delete r.pkt;
    }

    std::vector<Response> responses;
    std::deque<mem::PacketPtr> blocked;
    int retries = 0;

  private:
    Simulation &sim;
};

} // namespace salam::test

#endif // SALAM_TESTS_MEM_TEST_HARNESS_HH

/** @file Unit tests for the cache model. */

#include <gtest/gtest.h>

#include "mem/cache.hh"
#include "mem/simple_dram.hh"
#include "test_harness.hh"

using namespace salam;
using namespace salam::mem;
using salam::test::TestRequester;

namespace
{

struct CacheSystem
{
    Simulation sim;
    Cache *cache = nullptr;
    SimpleDram *dram = nullptr;
    TestRequester req{sim};

    explicit CacheSystem(CacheConfig ccfg = {})
    {
        DramConfig dcfg;
        dcfg.range = AddrRange{0, 1 << 20};
        dcfg.accessLatency = 10'000;
        dcfg.bytesPerTick = 0.0128;
        dram = &sim.create<SimpleDram>("dram", 1000, dcfg);
        cache = &sim.create<Cache>("l1", 10, ccfg);
        bindPorts(cache->memSide(), dram->port());
        bindPorts(req, cache->cpuSide());
    }
};

} // namespace

TEST(Cache, MissThenHitLatency)
{
    CacheSystem s;
    auto *miss = s.req.read(0, 0x100, 4);
    s.sim.run();
    Tick miss_arrival = s.req.arrivalOf(miss);
    EXPECT_GT(miss_arrival, 10'000u); // paid DRAM latency

    auto *hit = s.req.read(miss_arrival + 10, 0x104, 4);
    s.sim.run();
    // Same block -> hit, 1 cycle latency.
    EXPECT_LE(s.req.arrivalOf(hit) - (miss_arrival + 10), 20u);
    EXPECT_EQ(s.cache->hitCount(), 1u);
    EXPECT_EQ(s.cache->missCount(), 1u);
}

TEST(Cache, WriteReadRoundTrip)
{
    CacheSystem s;
    auto *w = s.req.write(0, 0x200, 0x55AA, 4);
    auto *r = s.req.read(100'000, 0x200, 4);
    s.sim.run();
    EXPECT_EQ(w->cmd(), MemCmd::WriteResp);
    std::uint32_t got = 0;
    r->copyData(&got, 4);
    EXPECT_EQ(got, 0x55AAu);
}

TEST(Cache, WritebackReachesDram)
{
    CacheConfig cfg;
    cfg.sizeBytes = 128; // tiny: 4 blocks of 32B
    cfg.blockBytes = 32;
    cfg.associativity = 1;
    CacheSystem s(cfg);

    // Write block A, then touch blocks that alias to the same set to
    // force eviction; direct-mapped: sets = 4, stride = 128.
    auto *w = s.req.write(0, 0x0, 0x1234, 4);
    (void)w;
    s.sim.run();
    s.req.read(s.sim.curTick() + 10, 128, 4); // evicts block 0
    s.sim.run();
    EXPECT_GE(s.cache->writebackCount(), 1u);

    // DRAM now holds the written value.
    std::uint32_t got = 0;
    s.dram->backdoorRead(0, &got, 4);
    EXPECT_EQ(got, 0x1234u);
}

TEST(Cache, CoalescedMissesShareOneFill)
{
    CacheSystem s;
    // Two reads to the same block issued in the same tick.
    auto *a = s.req.read(0, 0x40, 4);
    auto *b = s.req.read(0, 0x44, 4);
    s.sim.run();
    EXPECT_NE(s.req.arrivalOf(a), 0u);
    EXPECT_NE(s.req.arrivalOf(b), 0u);
    // One miss (the second coalesces), one DRAM read.
    EXPECT_EQ(s.cache->missCount(), 2u);
    EXPECT_EQ(s.dram->readCount(), 1u);
}

TEST(Cache, MshrExhaustionBlocksAndRetries)
{
    CacheConfig cfg;
    cfg.maxMshrs = 2;
    CacheSystem s(cfg);
    // Three distinct-block misses at once; the third is refused.
    s.req.read(0, 0x000, 4);
    s.req.read(0, 0x100, 4);
    auto *refused = new Packet(MemCmd::ReadReq, 0x200, 4);
    s.sim.eventQueue().schedule(0, [&s, refused] {
        EXPECT_FALSE(s.req.sendTimingReq(refused));
    });
    s.sim.run();
    EXPECT_GE(s.req.retries, 1);
    delete refused;
}

TEST(Cache, LruKeepsHotBlocks)
{
    CacheConfig cfg;
    cfg.sizeBytes = 128;
    cfg.blockBytes = 32;
    cfg.associativity = 2; // 2 sets x 2 ways
    CacheSystem s(cfg);

    // Set 0 blocks: 0x000, 0x040(set1)... stride between same-set
    // blocks is blockBytes * numSets = 64.
    s.req.read(0, 0x000, 4);
    s.sim.run();
    s.req.read(s.sim.curTick() + 10, 0x040 * 2, 4); // 0x80, set 0
    s.sim.run();
    // Touch 0x000 again to make it MRU.
    s.req.read(s.sim.curTick() + 10, 0x000, 4);
    s.sim.run();
    std::uint64_t hits_before = s.cache->hitCount();
    EXPECT_EQ(hits_before, 1u);
    // Bring in a third same-set block; should evict 0x80, not 0x00.
    s.req.read(s.sim.curTick() + 10, 0x100, 4);
    s.sim.run();
    s.req.read(s.sim.curTick() + 10, 0x000, 4);
    s.sim.run();
    EXPECT_EQ(s.cache->hitCount(), hits_before + 1);
}

TEST(Cache, MissRateReflectsWorkingSet)
{
    CacheConfig cfg;
    cfg.sizeBytes = 1024;
    cfg.blockBytes = 32;
    cfg.associativity = 4;
    CacheSystem s(cfg);

    // Stream 4 KiB (4x the capacity) twice: mostly misses.
    Tick when = 0;
    for (int pass = 0; pass < 2; ++pass) {
        for (unsigned addr = 0; addr < 4096; addr += 32) {
            s.req.read(when, addr, 4);
            when += 60'000;
        }
    }
    s.sim.run();
    EXPECT_GT(s.cache->missRate(), 0.9);
}

/**
 * @file
 * Unit tests for the Interconnect interface, InterconnectConfig
 * elaboration-time validation, and the AXI-like bus: burst timing,
 * round-robin arbitration, credit backpressure, and the wide-bus
 * crossbar-equivalence property the check.sh A/B gate relies on.
 */

#include <gtest/gtest.h>

#include "mem/axi_bus.hh"
#include "mem/crossbar.hh"
#include "mem/interconnect.hh"
#include "mem/scratchpad.hh"
#include "test_harness.hh"

using namespace salam;
using namespace salam::mem;
using salam::test::RetryRequester;
using salam::test::TestRequester;

namespace
{

ScratchpadConfig
spmConfig(std::uint64_t base, std::uint64_t size)
{
    ScratchpadConfig cfg;
    cfg.range = AddrRange{base, base + size};
    return cfg;
}

} // namespace

// --- InterconnectConfig validation -------------------------------

TEST(InterconnectConfig, DefaultIsValid)
{
    InterconnectConfig cfg;
    EXPECT_TRUE(cfg.validate().empty());
    cfg.kind = InterconnectKind::AxiBus;
    EXPECT_TRUE(cfg.validate().empty());
}

TEST(InterconnectConfig, ZeroCreditLimitRejected)
{
    InterconnectConfig cfg;
    cfg.maxOutstandingPerRequester = 0;
    EXPECT_NE(cfg.validate().find("credit"), std::string::npos);
}

TEST(InterconnectConfig, ZeroBeatWidthRejectedForBus)
{
    InterconnectConfig cfg;
    cfg.kind = InterconnectKind::AxiBus;
    cfg.busWidthBytes = 0;
    EXPECT_NE(cfg.validate().find("beat width"), std::string::npos);
    // The crossbar has no data channel, so width 0 is meaningless
    // but harmless there.
    cfg.kind = InterconnectKind::Crossbar;
    EXPECT_TRUE(cfg.validate().empty());
}

TEST(InterconnectConfig, MakeInterconnectFatalsOnBadConfig)
{
    // Misconfiguration must die at elaboration (fabric construction
    // precedes any accelerator/CDFG build in SalamSystem).
    EXPECT_EXIT(
        {
            Simulation sim;
            InterconnectConfig cfg;
            cfg.maxOutstandingPerRequester = 0;
            makeInterconnect(sim, "fab", 10, cfg);
        },
        ::testing::ExitedWithCode(1), "credit");
    EXPECT_EXIT(
        {
            Simulation sim;
            InterconnectConfig cfg;
            cfg.kind = InterconnectKind::AxiBus;
            cfg.busWidthBytes = 0;
            makeInterconnect(sim, "fab", 10, cfg);
        },
        ::testing::ExitedWithCode(1), "beat width");
}

TEST(InterconnectConfig, AxiBusCtorFatalsOnBadConfig)
{
    EXPECT_EXIT(
        {
            Simulation sim;
            InterconnectConfig cfg;
            cfg.kind = InterconnectKind::AxiBus;
            cfg.busWidthBytes = 0;
            sim.create<AxiLikeBus>("bus", 10, cfg);
        },
        ::testing::ExitedWithCode(1), "beat width");
}

TEST(InterconnectConfig, KindNames)
{
    EXPECT_STREQ(interconnectKindName(InterconnectKind::Crossbar),
                 "xbar");
    EXPECT_STREQ(interconnectKindName(InterconnectKind::AxiBus),
                 "axi");
}

// --- Interconnect interface / factory ----------------------------

TEST(Interconnect, FactoryBuildsBothKinds)
{
    Simulation sim;
    InterconnectConfig cfg;
    Interconnect &xbar = makeInterconnect(sim, "x", 10, cfg);
    cfg.kind = InterconnectKind::AxiBus;
    Interconnect &bus = makeInterconnect(sim, "b", 10, cfg);
    EXPECT_NE(dynamic_cast<Crossbar *>(&xbar), nullptr);
    EXPECT_NE(dynamic_cast<AxiLikeBus *>(&bus), nullptr);
}

TEST(Interconnect, RoutesThroughInterfaceForBothKinds)
{
    for (auto kind :
         {InterconnectKind::Crossbar, InterconnectKind::AxiBus}) {
        Simulation sim;
        InterconnectConfig cfg;
        cfg.kind = kind;
        Interconnect &fab = makeInterconnect(sim, "fab", 10, cfg);

        auto cfg_a = spmConfig(0x1000, 0x1000);
        auto cfg_b = spmConfig(0x2000, 0x1000);
        auto &spm_a = sim.create<Scratchpad>("spm_a", 10, cfg_a);
        auto &spm_b = sim.create<Scratchpad>("spm_b", 10, cfg_b);
        fab.connectDevice(spm_a.port(0), cfg_a.range);
        fab.connectDevice(spm_b.port(0), cfg_b.range);
        ASSERT_EQ(fab.routedRanges().size(), 2u);

        TestRequester req(sim);
        bindPorts(req, fab.addRequester("tester"));
        std::uint64_t magic_a = 0xAAAA, magic_b = 0xBBBB;
        spm_a.backdoorWrite(0x1100, &magic_a, 8);
        spm_b.backdoorWrite(0x2100, &magic_b, 8);
        auto *ra = req.read(0, 0x1100, 8);
        auto *rb = req.read(0, 0x2100, 8);
        sim.run();

        std::uint64_t got = 0;
        ra->copyData(&got, 8);
        EXPECT_EQ(got, magic_a);
        rb->copyData(&got, 8);
        EXPECT_EQ(got, magic_b);
    }
}

// --- AxiLikeBus --------------------------------------------------

TEST(AxiLikeBus, OverlappingRangesAreFatal)
{
    Simulation sim;
    InterconnectConfig cfg;
    cfg.kind = InterconnectKind::AxiBus;
    auto &bus = sim.create<AxiLikeBus>("bus", 10, cfg);
    auto cfg1 = spmConfig(0, 0x100);
    auto cfg2 = spmConfig(0x80, 0x100);
    auto &spm1 = sim.create<Scratchpad>("spm1", 10, cfg1);
    auto &spm2 = sim.create<Scratchpad>("spm2", 10, cfg2);
    bus.connectDevice(spm1.port(0), cfg1.range);
    EXPECT_EXIT(bus.connectDevice(spm2.port(0), cfg2.range),
                ::testing::ExitedWithCode(1), "overlapping");
}

TEST(AxiLikeBus, UnroutableAddressPanics)
{
    Simulation sim;
    InterconnectConfig cfg;
    cfg.kind = InterconnectKind::AxiBus;
    auto &bus = sim.create<AxiLikeBus>("bus", 10, cfg);
    auto scfg = spmConfig(0, 0x100);
    auto &spm = sim.create<Scratchpad>("spm", 10, scfg);
    bus.connectDevice(spm.port(0), scfg.range);
    TestRequester req(sim);
    bindPorts(req, bus.addRequester("r"));
    EXPECT_DEATH(
        {
            req.read(0, 0x9999, 4);
            sim.run();
        },
        "no route");
}

/**
 * Single-beat timing on both fabrics, same scenario: a wide bus
 * with unlimited credits must be cycle-identical to the crossbar —
 * the degenerate-equivalence property check.sh A/Bs on fig10.
 */
TEST(AxiLikeBus, WideBusMatchesCrossbarTiming)
{
    auto run_fabric = [](InterconnectKind kind) {
        Simulation sim;
        InterconnectConfig cfg;
        cfg.kind = kind;
        cfg.busWidthBytes = 64;
        Interconnect &fab = makeInterconnect(sim, "fab", 10, cfg);
        auto scfg = spmConfig(0, 0x1000);
        scfg.readPorts = 2;
        auto &spm = sim.create<Scratchpad>("spm", 10, scfg);
        fab.connectDevice(spm.port(0), scfg.range);
        TestRequester req(sim);
        bindPorts(req, fab.addRequester("r"));
        std::vector<PacketPtr> pkts;
        for (int i = 0; i < 4; ++i) {
            pkts.push_back(
                req.read(0, 8u * static_cast<unsigned>(i), 8));
        }
        sim.run();
        std::vector<Tick> arrivals;
        for (auto *p : pkts)
            arrivals.push_back(req.arrivalOf(p));
        return arrivals;
    };
    EXPECT_EQ(run_fabric(InterconnectKind::Crossbar),
              run_fabric(InterconnectKind::AxiBus));
}

/**
 * Multi-beat occupancy: back-to-back 16-byte reads on a 4-byte bus
 * are 4 beats each; the second transaction's address phase can
 * start immediately but its data phase waits for the first's 3
 * extra beat cycles on each channel, spreading the arrivals.
 */
TEST(AxiLikeBus, NarrowBusSerializesBursts)
{
    auto gap_for_width = [](unsigned width) {
        Simulation sim;
        InterconnectConfig cfg;
        cfg.kind = InterconnectKind::AxiBus;
        cfg.busWidthBytes = width;
        auto &bus = sim.create<AxiLikeBus>("bus", 10, cfg);
        auto scfg = spmConfig(0, 0x1000);
        scfg.readPorts = 4;
        auto &spm = sim.create<Scratchpad>("spm", 10, scfg);
        bus.connectDevice(spm.port(0), scfg.range);
        TestRequester req(sim);
        bindPorts(req, bus.addRequester("r"));
        auto *r0 = req.read(0, 0x00, 16);
        auto *r1 = req.read(0, 0x10, 16);
        sim.run();
        EXPECT_GT(req.arrivalOf(r0), 0u);
        EXPECT_GT(req.arrivalOf(r1), 0u);
        return req.arrivalOf(r1) - req.arrivalOf(r0);
    };
    Tick wide_gap = gap_for_width(64);   // 1 beat per transaction
    Tick narrow_gap = gap_for_width(4);  // 4 beats per transaction
    // 3 extra beat cycles of channel occupancy per 16B transaction
    // at width 4 (clock period 10 ticks).
    EXPECT_EQ(narrow_gap, wide_gap + 30u);
}

TEST(AxiLikeBus, BurstMetadataStampedOnPackets)
{
    Simulation sim;
    InterconnectConfig cfg;
    cfg.kind = InterconnectKind::AxiBus;
    cfg.busWidthBytes = 4;
    auto &bus = sim.create<AxiLikeBus>("bus", 10, cfg);
    auto scfg = spmConfig(0, 0x1000);
    auto &spm = sim.create<Scratchpad>("spm", 10, scfg);
    bus.connectDevice(spm.port(0), scfg.range);
    TestRequester req(sim);
    bindPorts(req, bus.addRequester("r"));
    auto *r = req.read(0, 0, 16);
    sim.run();
    EXPECT_EQ(r->burstBeats, 4u);
    EXPECT_EQ(r->beatBytes, 4u);
}

/**
 * Credit backpressure: with a 1-transaction credit pool the second
 * simultaneous request is refused, retried after the first response
 * releases its credit, and annotated with the credit-stall service
 * flag for stall attribution.
 */
TEST(AxiLikeBus, CreditLimitBackpressuresRequester)
{
    Simulation sim;
    InterconnectConfig cfg;
    cfg.kind = InterconnectKind::AxiBus;
    cfg.maxOutstandingPerRequester = 1;
    auto &bus = sim.create<AxiLikeBus>("bus", 10, cfg);
    auto scfg = spmConfig(0, 0x1000);
    scfg.readPorts = 4;
    auto &spm = sim.create<Scratchpad>("spm", 10, scfg);
    bus.connectDevice(spm.port(0), scfg.range);
    RetryRequester req(sim);
    bindPorts(req, bus.addRequester("r"));

    auto *r0 = req.read(0, 0x00, 4);
    auto *r1 = req.read(0, 0x10, 4);
    sim.run();

    EXPECT_GE(req.retries, 1);
    EXPECT_GE(bus.creditStallCount(), 1u);
    ASSERT_EQ(req.responses.size(), 2u);
    EXPECT_GT(req.arrivalOf(r1), req.arrivalOf(r0));
    EXPECT_TRUE(r1->serviceFlags & svcCreditStall);
}

TEST(AxiLikeBus, UnlimitedCreditsNeverStall)
{
    Simulation sim;
    InterconnectConfig cfg;
    cfg.kind = InterconnectKind::AxiBus;
    auto &bus = sim.create<AxiLikeBus>("bus", 10, cfg);
    auto scfg = spmConfig(0, 0x1000);
    scfg.readPorts = 8;
    auto &spm = sim.create<Scratchpad>("spm", 10, scfg);
    bus.connectDevice(spm.port(0), scfg.range);
    RetryRequester req(sim);
    bindPorts(req, bus.addRequester("r"));
    for (int i = 0; i < 8; ++i)
        req.read(0, 4u * static_cast<unsigned>(i), 4);
    sim.run();
    EXPECT_EQ(req.retries, 0);
    EXPECT_EQ(bus.creditStallCount(), 0u);
    EXPECT_EQ(req.responses.size(), 8u);
}

/**
 * Round-robin arbitration: two requesters streaming multi-beat
 * reads through a narrow bus must interleave grants — neither
 * starves, and both finish within one transaction of each other.
 */
TEST(AxiLikeBus, RoundRobinArbitrationIsFair)
{
    Simulation sim;
    InterconnectConfig cfg;
    cfg.kind = InterconnectKind::AxiBus;
    cfg.busWidthBytes = 4;
    auto &bus = sim.create<AxiLikeBus>("bus", 10, cfg);
    auto scfg = spmConfig(0, 0x1000);
    scfg.readPorts = 8;
    auto &spm = sim.create<Scratchpad>("spm", 10, scfg);
    bus.connectDevice(spm.port(0), scfg.range);

    TestRequester r0(sim, "r0");
    TestRequester r1(sim, "r1");
    bindPorts(r0, bus.addRequester("r0"));
    bindPorts(r1, bus.addRequester("r1"));

    std::vector<PacketPtr> p0, p1;
    for (int i = 0; i < 4; ++i) {
        p0.push_back(r0.read(0, 16u * static_cast<unsigned>(i), 16));
        p1.push_back(
            r1.read(0, 0x200 + 16u * static_cast<unsigned>(i), 16));
    }
    sim.run();

    ASSERT_EQ(r0.responses.size(), 4u);
    ASSERT_EQ(r1.responses.size(), 4u);
    // Responses route back to their own requester.
    for (auto *p : p0)
        EXPECT_GT(r0.arrivalOf(p), 0u);
    for (auto *p : p1)
        EXPECT_GT(r1.arrivalOf(p), 0u);
    Tick last0 = 0, last1 = 0;
    for (auto *p : p0)
        last0 = std::max(last0, r0.arrivalOf(p));
    for (auto *p : p1)
        last1 = std::max(last1, r1.arrivalOf(p));
    // Fair interleave: completion times within one 4-beat
    // transaction (40 ticks) of each other, not 4 transactions.
    Tick spread = last0 > last1 ? last0 - last1 : last1 - last0;
    EXPECT_LE(spread, 40u);
    EXPECT_GE(bus.arbitrationStallCount(), 1u);
}

/** Contended multi-beat traffic is flagged for stall attribution. */
TEST(AxiLikeBus, ArbitrationStallsAnnotatePackets)
{
    Simulation sim;
    InterconnectConfig cfg;
    cfg.kind = InterconnectKind::AxiBus;
    cfg.busWidthBytes = 4;
    auto &bus = sim.create<AxiLikeBus>("bus", 10, cfg);
    auto scfg = spmConfig(0, 0x1000);
    scfg.readPorts = 8;
    auto &spm = sim.create<Scratchpad>("spm", 10, scfg);
    bus.connectDevice(spm.port(0), scfg.range);
    TestRequester req(sim);
    bindPorts(req, bus.addRequester("r"));
    auto *r0 = req.read(0, 0x00, 16);
    auto *r1 = req.read(0, 0x10, 16);
    sim.run();
    (void)r0;
    // The second transaction waited on the first's beats.
    EXPECT_TRUE(r1->serviceFlags & svcBusArbitration);
}

/** Writes take the AW/W channel and acks return on B. */
TEST(AxiLikeBus, WritesAndReadsUseSeparateChannels)
{
    Simulation sim;
    InterconnectConfig cfg;
    cfg.kind = InterconnectKind::AxiBus;
    cfg.busWidthBytes = 4;
    auto &bus = sim.create<AxiLikeBus>("bus", 10, cfg);
    auto scfg = spmConfig(0, 0x1000);
    scfg.readPorts = 4;
    scfg.writePorts = 4;
    auto &spm = sim.create<Scratchpad>("spm", 10, scfg);
    bus.connectDevice(spm.port(0), scfg.range);
    TestRequester req(sim);
    bindPorts(req, bus.addRequester("r"));

    // A 16-byte write (4 beats on AW/W) and a concurrent 4-byte
    // read: separate address channels, so the read is NOT delayed
    // behind the write burst.
    auto *w = req.write(0, 0x00, 0x1122334455667788ull, 8);
    auto *r = req.read(0, 0x100, 4);
    sim.run();
    EXPECT_EQ(w->cmd(), MemCmd::WriteResp);
    EXPECT_GT(req.arrivalOf(r), 0u);
    // Read arrival equals the uncontended single-beat round trip:
    // 1 cycle in + 1 cycle SPM + 1 cycle back = 3 cycles @ 10.
    EXPECT_EQ(req.arrivalOf(r), 30u);
}

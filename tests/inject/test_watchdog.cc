/** @file Tests for the forward-progress watchdog and state dumps. */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "inject/fault_injector.hh"
#include "inject/progress_sentinel.hh"
#include "sim/simulation.hh"
#include "support/minijson.hh"

using namespace salam;
using namespace salam::inject;
using salam::testsupport::parseJson;

namespace
{

/**
 * A component that fires a periodic event. Whether each beat counts
 * as retirement-level progress is the experiment variable: a
 * progressing pulser models a healthy pipeline, a non-progressing one
 * models a livelock (events firing, nothing retiring).
 */
class Pulser : public SimObject
{
  public:
    Pulser(Simulation &sim, std::string name, bool progresses,
           unsigned beats, std::string stuck = {})
        : SimObject(sim, std::move(name)), progresses(progresses),
          beatsLeft(beats), stuckMsg(std::move(stuck))
    {
    }

    void
    start()
    {
        eventQueue().schedule(curTick() + 100, [this] { beat(); },
                              name() + ".beat");
    }

    unsigned beatsDone = 0;

    void
    dumpDiagnostics(obs::JsonBuilder &json) const override
    {
        json.field("beats_done", std::uint64_t(beatsDone));
    }

    std::string stuckReason() const override { return stuckMsg; }

  private:
    void
    beat()
    {
        ++beatsDone;
        if (progresses)
            noteProgress();
        if (--beatsLeft > 0)
            start();
    }

    bool progresses;
    unsigned beatsLeft;
    std::string stuckMsg;
};

} // namespace

TEST(Watchdog, TripsOnLivelock)
{
    // Events keep firing but nothing retires: the queue never drains,
    // so only the sentinel can catch this.
    EXPECT_EXIT(
        {
            Simulation sim;
            auto &pulser = sim.create<Pulser>(
                "pulser", /*progresses=*/false, /*beats=*/1000,
                "spinning without retiring");
            auto &dog = sim.create<ProgressSentinel>(
                "watchdog",
                ProgressSentinel::Config{
                    1000, "", [] { return false; }});
            pulser.start();
            dog.start();
            sim.run();
        },
        ::testing::ExitedWithCode(1),
        "no forward progress.*watchdog.*pulser.*spinning without "
        "retiring");
}

TEST(Watchdog, StaysQuietWhileProgressing)
{
    Simulation sim;
    auto &pulser = sim.create<Pulser>("pulser", /*progresses=*/true,
                                      /*beats=*/50);
    auto &dog = sim.create<ProgressSentinel>(
        "watchdog",
        ProgressSentinel::Config{
            1000, "", [&] { return pulser.beatsDone >= 50; }});
    pulser.start();
    dog.start();
    sim.run();
    EXPECT_EQ(pulser.beatsDone, 50u);
    // The sentinel stopped rescheduling once done() held, so the run
    // actually terminated — reaching this line is the assertion.
}

TEST(Watchdog, RejectsZeroWindow)
{
    EXPECT_EXIT(
        {
            Simulation sim;
            sim.create<ProgressSentinel>(
                "watchdog",
                ProgressSentinel::Config{0, "",
                                         [] { return false; }});
        },
        ::testing::ExitedWithCode(1), "window must be non-zero");
}

TEST(Watchdog, StateDumpIsWellFormedAndNamesSuspects)
{
    Simulation sim;
    auto &stuck = sim.create<Pulser>("stuck_unit", false, 1,
                                     "waiting on a lost response");
    sim.create<Pulser>("healthy_unit", true, 1);
    stuck.beatsDone = 3;

    FaultPlan plan;
    ASSERT_EQ(plan.parse("drop_response@stuck_unit:nth=2"), "");
    FaultInjector injector(plan);
    injector.attach(sim);

    auto doc = parseJson(buildStateDump(sim, "test hang"));
    EXPECT_EQ(doc.at("kind").string, "salam_state_dump");
    EXPECT_EQ(doc.at("reason").string, "test hang");
    ASSERT_TRUE(doc.at("suspects").isArray());
    ASSERT_EQ(doc.at("suspects").array.size(), 1u);
    EXPECT_EQ(doc.at("suspects").array[0].at("object").string,
              "stuck_unit");
    EXPECT_EQ(doc.at("suspects").array[0].at("reason").string,
              "waiting on a lost response");

    // Every object appears with its diagnostics payload.
    bool saw_stuck = false, saw_healthy = false;
    for (const auto &obj : doc.at("objects").array) {
        if (obj.at("name").string == "stuck_unit") {
            saw_stuck = true;
            EXPECT_EQ(obj.at("stuck").string,
                      "waiting on a lost response");
            EXPECT_EQ(obj.at("state").at("beats_done").number, 3.0);
        }
        if (obj.at("name").string == "healthy_unit") {
            saw_healthy = true;
            EXPECT_FALSE(obj.has("stuck"));
        }
    }
    EXPECT_TRUE(saw_stuck);
    EXPECT_TRUE(saw_healthy);

    // The attached injector contributes its plan.
    EXPECT_TRUE(doc.has("injection"));
}

TEST(Watchdog, CollectSuspectsSkipsHealthyObjects)
{
    Simulation sim;
    sim.create<Pulser>("a", true, 1);
    sim.create<Pulser>("b", true, 1, "wedged");
    sim.create<Pulser>("c", true, 1);
    auto suspects = collectSuspects(sim);
    ASSERT_EQ(suspects.size(), 1u);
    EXPECT_EQ(suspects[0].first, "b");
    EXPECT_EQ(suspects[0].second, "wedged");
}

TEST(Watchdog, WriteStateDumpRoundTrips)
{
    Simulation sim;
    sim.create<Pulser>("unit", true, 1);
    // Under the test harness's temp dir, never the source tree.
    std::string path = ::testing::TempDir() +
        "watchdog_test_dump.json";
    ASSERT_TRUE(writeStateDump(path, buildStateDump(sim, "probe")));

    std::ifstream in(path);
    std::stringstream ss;
    ss << in.rdbuf();
    auto doc = parseJson(ss.str());
    EXPECT_EQ(doc.at("reason").string, "probe");
    std::remove(path.c_str());
}

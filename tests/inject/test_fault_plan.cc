/** @file Unit tests for the fault-plan grammar and seeded resolve. */

#include <gtest/gtest.h>

#include "inject/fault_plan.hh"

using namespace salam::inject;

TEST(FaultPlan, ParsesFullGrammar)
{
    FaultPlan plan;
    EXPECT_EQ(plan.parse("delay_response@spm:nth=5:count=3:delay=250"),
              "");
    ASSERT_EQ(plan.specs.size(), 1u);
    const FaultSpec &spec = plan.specs[0];
    EXPECT_EQ(spec.kind, FaultKind::DelayResponse);
    EXPECT_EQ(spec.site, "spm");
    EXPECT_EQ(spec.nth, 5u);
    EXPECT_TRUE(spec.nthExplicit);
    EXPECT_EQ(spec.count, 3u);
    EXPECT_EQ(spec.delayTicks, 250u);
}

TEST(FaultPlan, ParsesEveryKind)
{
    const std::pair<const char *, FaultKind> kinds[] = {
        {"delay_response", FaultKind::DelayResponse},
        {"drop_response", FaultKind::DropResponse},
        {"retry_storm", FaultKind::RetryStorm},
        {"bit_flip", FaultKind::BitFlip},
        {"drop_irq", FaultKind::DropIrq},
        {"spurious_irq", FaultKind::SpuriousIrq},
        {"dma_stall", FaultKind::DmaStall},
    };
    FaultPlan plan;
    for (const auto &[name, kind] : kinds) {
        EXPECT_EQ(plan.parse(std::string(name) + "@x"), "") << name;
        EXPECT_EQ(plan.specs.back().kind, kind) << name;
        EXPECT_STREQ(faultKindName(kind), name);
    }
}

TEST(FaultPlan, EmptySiteMatchesEverywhere)
{
    FaultPlan plan;
    EXPECT_EQ(plan.parse("bit_flip@"), "");
    EXPECT_EQ(plan.specs[0].site, "");
}

TEST(FaultPlan, SpuriousIrqLineOption)
{
    FaultPlan plan;
    EXPECT_EQ(plan.parse("spurious_irq@host:line=7"), "");
    EXPECT_EQ(plan.specs[0].line, 7);
    // Default: deliver on whatever line is awaited.
    EXPECT_EQ(plan.parse("spurious_irq@host"), "");
    EXPECT_EQ(plan.specs[1].line, -1);
}

TEST(FaultPlan, RejectsMalformedSpecs)
{
    FaultPlan plan;
    EXPECT_NE(plan.parse("bit_flip").find("missing '@site'"),
              std::string::npos);
    EXPECT_NE(plan.parse("melt@spm").find("unknown fault kind"),
              std::string::npos);
    EXPECT_NE(plan.parse("bit_flip@spm:wat=3")
                  .find("unknown fault option"),
              std::string::npos);
    EXPECT_NE(plan.parse("bit_flip@spm:nth").find("missing '=value'"),
              std::string::npos);
    EXPECT_NE(plan.parse("bit_flip@spm:nth=x").find("needs a number"),
              std::string::npos);
    EXPECT_NE(plan.parse("bit_flip@spm:nth=0").find("1-based"),
              std::string::npos);
    EXPECT_NE(plan.parse("bit_flip@spm:count=0").find("positive"),
              std::string::npos);
    // Nothing malformed may have been appended.
    EXPECT_TRUE(plan.empty());
}

TEST(FaultPlan, ResolveIsDeterministicAndIdempotent)
{
    FaultPlan a, b;
    a.seed = b.seed = 42;
    ASSERT_EQ(a.parse("bit_flip@spm"), "");
    ASSERT_EQ(b.parse("bit_flip@spm"), "");
    a.resolve();
    b.resolve();
    EXPECT_EQ(a.specs[0].nth, b.specs[0].nth);
    EXPECT_EQ(a.specs[0].bit, b.specs[0].bit);
    EXPECT_TRUE(a.specs[0].nthExplicit);
    EXPECT_TRUE(a.specs[0].bitExplicit);

    // A second resolve must not reshuffle anything.
    std::uint64_t nth = a.specs[0].nth, bit = a.specs[0].bit;
    a.resolve();
    EXPECT_EQ(a.specs[0].nth, nth);
    EXPECT_EQ(a.specs[0].bit, bit);
}

TEST(FaultPlan, ResolveKeyedOnSpecIdentityNotListPosition)
{
    // Adding an unrelated spec to the campaign must not change the
    // seeded defaults of the specs already in it.
    FaultPlan alone, listed;
    alone.seed = listed.seed = 7;
    ASSERT_EQ(alone.parse("bit_flip@spm"), "");
    ASSERT_EQ(listed.parse("drop_irq@gic"), "");
    ASSERT_EQ(listed.parse("bit_flip@spm"), "");
    alone.resolve();
    listed.resolve();
    EXPECT_EQ(alone.specs[0].nth, listed.specs[1].nth);
    EXPECT_EQ(alone.specs[0].bit, listed.specs[1].bit);
}

TEST(FaultPlan, SeedChangesUnspecifiedDefaults)
{
    FaultPlan a, b;
    a.seed = 1;
    b.seed = 2;
    ASSERT_EQ(a.parse("bit_flip@spm"), "");
    ASSERT_EQ(b.parse("bit_flip@spm"), "");
    a.resolve();
    b.resolve();
    EXPECT_TRUE(a.specs[0].nth != b.specs[0].nth ||
                a.specs[0].bit != b.specs[0].bit);
}

TEST(FaultPlan, ExplicitFieldsSurviveResolve)
{
    FaultPlan plan;
    plan.seed = 99;
    ASSERT_EQ(plan.parse("bit_flip@spm:nth=7:bit=3"), "");
    plan.resolve();
    EXPECT_EQ(plan.specs[0].nth, 7u);
    EXPECT_EQ(plan.specs[0].bit, 3u);
}

TEST(FaultPlan, DescribeRoundTripsThroughParse)
{
    FaultPlan plan;
    plan.seed = 5;
    ASSERT_EQ(plan.parse("delay_response@xbar:count=2"), "");
    ASSERT_EQ(plan.parse("bit_flip@dram"), "");
    ASSERT_EQ(plan.parse("spurious_irq@host:line=3"), "");
    plan.resolve();

    for (const FaultSpec &spec : plan.specs) {
        FaultPlan reparsed;
        ASSERT_EQ(reparsed.parse(spec.describe()), "")
            << spec.describe();
        const FaultSpec &copy = reparsed.specs[0];
        EXPECT_EQ(copy.kind, spec.kind);
        EXPECT_EQ(copy.site, spec.site);
        EXPECT_EQ(copy.nth, spec.nth);
        EXPECT_EQ(copy.count, spec.count);
        EXPECT_EQ(copy.line, spec.line);
        if (spec.kind == FaultKind::DelayResponse) {
            EXPECT_EQ(copy.delayTicks, spec.delayTicks);
        }
        if (spec.kind == FaultKind::BitFlip) {
            EXPECT_EQ(copy.bit, spec.bit);
        }
    }
}

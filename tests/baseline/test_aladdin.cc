/** @file Tests for the Aladdin-style trace-based baseline. */

#include <gtest/gtest.h>

#include <cstdio>

#include "baseline/aladdin.hh"
#include "kernels/machsuite.hh"
#include "../ir/test_helpers.hh"

using namespace salam;
using namespace salam::ir;
using namespace salam::baseline;
using namespace salam::kernels;

namespace
{

constexpr std::uint64_t base = 0x10000;

std::string
tracePath(const std::string &tag)
{
    return ::testing::TempDir() + "salam_trace_" + tag + ".txt";
}

AladdinResult
runKernel(const Kernel &kernel, const AladdinConfig &cfg,
          const std::string &tag)
{
    Module mod("m");
    IRBuilder b(mod);
    Function *fn = kernel.buildOptimized(b);
    FlatMemory mem;
    kernel.seed(mem, base);
    AladdinSimulator sim(cfg);
    auto result =
        sim.run(*fn, kernel.args(base), mem, tracePath(tag));
    std::remove(tracePath(tag).c_str());
    return result;
}

} // namespace

TEST(TraceFile, GenerateParseRoundTrip)
{
    Module mod("m");
    IRBuilder b(mod);
    Function *fn = salam::test::buildSumSquares(b, 10);
    FlatMemory mem;
    std::string path = tracePath("roundtrip");
    std::uint64_t written =
        TraceFile::generate(*fn, {}, mem, path);
    auto parsed = TraceFile::parse(path);
    EXPECT_EQ(parsed.size(), written);
    EXPECT_GT(TraceFile::fileBytes(path), 0u);
    // Dynamic instruction count: 10 iterations of a 6-inst loop
    // plus entry/exit.
    EXPECT_GT(written, 10u * 6u);
    std::remove(path.c_str());
}

TEST(TraceFile, EntriesCarryMemoryAddresses)
{
    Module mod("m");
    IRBuilder b(mod);
    Function *fn = salam::test::buildVecAdd(b, 4);
    FlatMemory mem;
    std::string path = tracePath("mem");
    TraceFile::generate(
        *fn,
        {RuntimeValue::fromPointer(0x100),
         RuntimeValue::fromPointer(0x200),
         RuntimeValue::fromPointer(0x300)},
        mem, path);
    auto parsed = TraceFile::parse(path);
    bool saw_store_at_0x300 = false;
    for (const auto &entry : parsed) {
        if (entry.isStore() && entry.memAddr >= 0x300 &&
            entry.memAddr < 0x310) {
            saw_store_at_0x300 = true;
        }
    }
    EXPECT_TRUE(saw_store_at_0x300);
    std::remove(path.c_str());
}

TEST(Aladdin, CyclesAndDatapathPopulated)
{
    auto result = runKernel(*makeGemm(8, 4), {}, "gemm");
    EXPECT_GT(result.cycles, 100u);
    EXPECT_GT(result.dynamicNodes, 1000u);
    EXPECT_GT(result.traceBytes, 0u);
    EXPECT_GT(
        result.fuCounts[static_cast<std::size_t>(
            hw::FuType::FpMultiplierDouble)],
        0u);
}

TEST(Aladdin, DatapathDependsOnInputData)
{
    // The Table I experiment: identical kernel source, two
    // datasets. The guarded shifter only appears in the datapath
    // when the data exercises it.
    AladdinConfig cfg;
    auto r1 =
        runKernel(*makeSpmv(64, 8, true, 1), cfg, "spmv1");
    auto r2 =
        runKernel(*makeSpmv(64, 8, true, 2), cfg, "spmv2");

    auto shifter =
        static_cast<std::size_t>(hw::FuType::Shifter);
    EXPECT_EQ(r1.fuCounts[shifter], 0u);
    EXPECT_GT(r2.fuCounts[shifter], 0u);
}

TEST(Aladdin, DatapathDependsOnCacheSize)
{
    // The Table II experiment: sweeping the cache changes data
    // availability and therefore the reverse-engineered FU counts.
    auto kernel = makeGemm(8, 8);
    std::vector<unsigned> fmul_counts;
    for (std::uint64_t size : {256u, 1024u, 4096u}) {
        AladdinConfig cfg;
        cfg.memory.kind = AladdinMemoryConfig::Kind::Cache;
        cfg.memory.cacheSizeBytes = size;
        auto result = runKernel(*kernel, cfg,
                                "cache" + std::to_string(size));
        fmul_counts.push_back(
            result.fuCounts[static_cast<std::size_t>(
                hw::FuType::FpMultiplierDouble)]);
        EXPECT_GT(result.cacheHits + result.cacheMisses, 0u);
    }
    // Not all sweep points may differ, but the datapath must not be
    // invariant across the whole sweep (that is SALAM's property,
    // not Aladdin's).
    bool varies = fmul_counts[0] != fmul_counts[1] ||
        fmul_counts[1] != fmul_counts[2];
    EXPECT_TRUE(varies);
}

TEST(Aladdin, SpmVsCacheChangesDatapath)
{
    // Table II's last row: switching to a multi-ported SPM changes
    // data availability and with it the synthesized datapath.
    auto kernel = makeGemm(8, 8);
    AladdinConfig spm_cfg;
    spm_cfg.memory.spmReadPorts = 4;
    spm_cfg.memory.spmWritePorts = 4;
    auto spm = runKernel(*kernel, spm_cfg, "spm");
    AladdinConfig cache_cfg;
    cache_cfg.memory.kind = AladdinMemoryConfig::Kind::Cache;
    cache_cfg.memory.cacheSizeBytes = 1024;
    auto cache = runKernel(*kernel, cache_cfg, "cache");

    auto fmul = static_cast<std::size_t>(
        hw::FuType::FpMultiplierDouble);
    EXPECT_NE(spm.fuCounts[fmul], cache.fuCounts[fmul]);
    EXPECT_NE(spm.cycles, cache.cycles);
}

TEST(Aladdin, MemoryDependencesRespected)
{
    // Store then dependent load: cycles must exceed the pure
    // dataflow depth because the load waits on the store address.
    Module mod("m");
    IRBuilder b(mod);
    Context &ctx = b.context();
    Function *fn = b.createFunction("rmw", ctx.voidType());
    Argument *p = fn->addArgument(ctx.pointerTo(ctx.i64()), "p");
    BasicBlock *entry = b.createBlock("entry");
    b.setInsertPoint(entry);
    b.store(b.constI64(5), p);
    Value *v = b.load(p, "v");
    Value *w = b.add(v, b.constI64(1), "w");
    b.store(w, p);
    b.ret();

    FlatMemory mem;
    std::string path = tracePath("rmw");
    TraceFile::generate(*fn, {RuntimeValue::fromPointer(0x40)},
                        mem, path);
    auto trace = TraceFile::parse(path);
    AladdinSimulator sim;
    auto result = sim.schedule(trace);
    // store(1) -> load(1) -> add(1) -> store(1): at least 4 levels.
    EXPECT_GE(result.cycles, 4u);
    std::remove(path.c_str());
}

TEST(Aladdin, WallClockPhasesMeasured)
{
    auto result = runKernel(*makeStencil2d(16, 16, 2), {}, "wall");
    EXPECT_GT(result.traceGenSeconds, 0.0);
    EXPECT_GT(result.simulateSeconds, 0.0);
}

/**
 * @file
 * End-to-end observability test: a small GEMM run with tracing on
 * must emit a valid Chrome trace_event document and a stats dump
 * containing histogram, vector, and formula statistics.
 */

#include <gtest/gtest.h>

#include <set>
#include <sstream>

#include "core/compute_unit.hh"
#include "ir/ir_builder.hh"
#include "kernels/machsuite.hh"
#include "mem/backdoor.hh"
#include "mem/cache.hh"
#include "mem/simple_dram.hh"
#include "support/minijson.hh"

using namespace salam;
using namespace salam::core;
using namespace salam::mem;
using salam::testsupport::JsonValue;
using salam::testsupport::parseJson;

namespace
{

/** Runs a 2x2 GEMM through an accelerator with tracing enabled. */
struct TracedGemm
{
    Simulation sim;
    ComputeUnit *cu = nullptr;
    ir::Module mod{"m"};
    ir::IRBuilder builder{mod};

    TracedGemm()
    {
        sim.enableTracing();

        auto kernel = kernels::makeGemm(2, 1);
        ir::Function *fn = kernel->build(builder);

        DeviceConfig dev;
        DramConfig dcfg;
        dcfg.range = AddrRange{0, 1 << 20};
        auto &dram = sim.create<SimpleDram>("dram", 1000, dcfg);
        auto &cache =
            sim.create<Cache>("l1", dev.clockPeriod, CacheConfig{});
        bindPorts(cache.memSide(), dram.port());

        CommInterfaceConfig icfg;
        icfg.mmrRange = AddrRange{0x8000'0000, 0x8000'0000 + 256};
        icfg.dataPorts.push_back({"cache", {dcfg.range}});
        auto &comm = sim.create<CommInterface>(
            "comm", dev.clockPeriod, icfg);
        bindPorts(comm.dataPort(0), cache.cpuSide());
        cu = &sim.create<ComputeUnit>("acc", *fn, dev, comm);

        ir::FlatMemory staging;
        kernel->seed(staging, 0x1000);
        std::vector<std::uint8_t> bytes(kernel->footprintBytes());
        staging.readBytes(0x1000, bytes.size(), bytes.data());
        dram.backdoorWrite(0x1000, bytes.data(), bytes.size());
        cu->start(kernel->args(0x1000));
        sim.run();
        sim.finalizeAll();
    }
};

TEST(Observability, GemmRunEmitsValidChromeTrace)
{
    TracedGemm t;
    ASSERT_TRUE(t.cu->finished());
    ASSERT_NE(t.sim.traceSink(), nullptr);
    EXPECT_GT(t.sim.traceSink()->size(), 0u);

    std::ostringstream os;
    t.sim.traceSink()->writeChromeTrace(os);
    JsonValue doc = parseJson(os.str()); // throws if malformed
    ASSERT_TRUE(doc.isObject());
    EXPECT_EQ(doc.at("displayTimeUnit").string, "ns");

    const auto &events = doc.at("traceEvents").array;
    ASSERT_FALSE(events.empty());

    std::set<std::string> phases;
    for (const auto &ev : events) {
        const std::string &ph = ev.at("ph").string;
        phases.insert(ph);
        // Every non-metadata event is timestamped and attributed.
        if (ph != "M") {
            EXPECT_TRUE(ev.at("ts").isNumber());
            EXPECT_GE(ev.at("ts").number, 0.0);
        }
        EXPECT_TRUE(ev.at("pid").isNumber());
        EXPECT_TRUE(ev.at("tid").isNumber());
    }
    // Metadata, complete slices, counters, and instants all present.
    EXPECT_TRUE(phases.count("M"));
    EXPECT_TRUE(phases.count("X"));
    EXPECT_TRUE(phases.count("C"));
    EXPECT_TRUE(phases.count("i"));

    // Durations on slices are non-negative.
    for (const auto &ev : events) {
        if (ev.at("ph").string == "X") {
            EXPECT_GE(ev.at("dur").number, 0.0);
        }
    }
}

TEST(Observability, GemmRunStatsIncludeAllKinds)
{
    TracedGemm t;
    JsonValue doc = parseJson(t.sim.stats().dumpJsonString());
    ASSERT_TRUE(doc.isObject());

    // At least one histogram, one vector, and one formula.
    const auto &hist = doc.at("acc.engine.mem_queue_occupancy");
    EXPECT_EQ(hist.at("kind").string, "histogram");
    EXPECT_GT(hist.at("count").number, 0.0);

    const auto &vec = doc.at("acc.engine.stall_causes");
    EXPECT_EQ(vec.at("kind").string, "vector");
    ASSERT_TRUE(vec.at("lanes").isObject());
    EXPECT_TRUE(vec.at("lanes").has("compute_only"));

    const auto &fu = doc.at("acc.engine.fu_utilization");
    EXPECT_EQ(fu.at("kind").string, "formula");
    EXPECT_GE(fu.at("value").number, 0.0);
    EXPECT_LE(fu.at("value").number, 1.0);

    // The run made progress, so engine formulas are non-zero.
    EXPECT_GT(doc.at("acc.engine.total_cycles").at("value").number,
              0.0);
    EXPECT_GT(doc.at("acc.engine.dynamic_insts").at("value").number,
              0.0);

    // Cache and event-queue instrumentation present too.
    EXPECT_GT(doc.at("l1.cache.hits").at("value").number, 0.0);
    EXPECT_GT(doc.at("sim.event_queue.serviced").at("value").number,
              0.0);
}

TEST(Observability, TracingOffMeansNoSink)
{
    Simulation sim;
    EXPECT_EQ(sim.traceSink(), nullptr);
}

} // namespace

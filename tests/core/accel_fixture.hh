/** @file Test fixture: a single accelerator with a private SPM. */

#ifndef SALAM_TESTS_CORE_ACCEL_FIXTURE_HH
#define SALAM_TESTS_CORE_ACCEL_FIXTURE_HH

#include "core/compute_unit.hh"
#include "ir/interpreter.hh"
#include "ir/ir_builder.hh"
#include "mem/scratchpad.hh"
#include "sim/simulation.hh"

namespace salam::test
{

/** Address map used across the core tests. */
constexpr std::uint64_t spmBase = 0x10000;
constexpr std::uint64_t spmSize = 256 * 1024;
constexpr std::uint64_t mmrBase = 0x2000;

/** A single accelerator + private SPM system. */
struct AccelSystem
{
    Simulation sim;
    mem::Scratchpad *spm = nullptr;
    core::CommInterface *comm = nullptr;
    core::ComputeUnit *cu = nullptr;

    AccelSystem(const ir::Function &fn,
                core::DeviceConfig dev = {},
                mem::ScratchpadConfig spm_cfg = defaultSpm())
    {
        spm = &sim.create<mem::Scratchpad>("spm", dev.clockPeriod,
                                           spm_cfg);

        core::CommInterfaceConfig ccfg;
        ccfg.mmrRange = mem::AddrRange{mmrBase, mmrBase + 32 * 8};
        ccfg.dataPorts.push_back(
            {"spm", {spm_cfg.range}});
        comm = &sim.create<core::CommInterface>(
            "comm", dev.clockPeriod, ccfg);
        mem::bindPorts(comm->dataPort(0), spm->port(0));

        cu = &sim.create<core::ComputeUnit>("acc", fn, dev, *comm);
    }

    static mem::ScratchpadConfig
    defaultSpm()
    {
        mem::ScratchpadConfig cfg;
        cfg.range = mem::AddrRange{spmBase, spmBase + spmSize};
        cfg.latencyCycles = 1;
        cfg.readPorts = 4;
        cfg.writePorts = 4;
        return cfg;
    }

    /** Run the kernel to completion; returns cycle count. */
    std::uint64_t
    run(const std::vector<ir::RuntimeValue> &args)
    {
        cu->start(args);
        sim.run();
        SALAM_ASSERT(cu->finished());
        return cu->cycleCount();
    }
};

/**
 * Execute @p fn functionally over a FlatMemory seeded by @p seed and
 * return that memory for comparison against the timed system.
 */
inline std::unique_ptr<ir::FlatMemory>
goldenRun(const ir::Function &fn,
          const std::vector<ir::RuntimeValue> &args,
          const std::function<void(ir::MemoryAccessor &)> &seed)
{
    auto mem = std::make_unique<ir::FlatMemory>();
    seed(*mem);
    ir::Interpreter interp(*mem);
    interp.run(fn, args);
    return mem;
}

} // namespace salam::test

#endif // SALAM_TESTS_CORE_ACCEL_FIXTURE_HH

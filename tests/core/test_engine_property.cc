/**
 * @file
 * Property test: the timed runtime engine must compute exactly what
 * the functional interpreter computes, for randomly generated
 * kernels with mixed arithmetic and memory traffic, across seeds
 * and scheduler configurations.
 */

#include <gtest/gtest.h>

#include "accel_fixture.hh"
#include "mem/backdoor.hh"

using namespace salam;
using namespace salam::ir;
using salam::test::AccelSystem;
using salam::test::spmBase;

namespace
{

class Rng
{
  public:
    explicit Rng(std::uint64_t seed) : state(seed * 2 + 1) {}

    std::uint64_t
    next()
    {
        state = state * 6364136223846793005ULL +
            1442695040888963407ULL;
        return state >> 16;
    }

    std::uint64_t below(std::uint64_t n) { return next() % n; }

  private:
    std::uint64_t state;
};

constexpr unsigned slots = 64;

/**
 * Random kernel over an i64 array `data[slots]`: a counted loop
 * whose body mixes loads, arithmetic, and stores (including
 * read-modify-write patterns that stress memory ordering).
 */
Function *
randomMemoryKernel(IRBuilder &b, Rng &rng)
{
    Context &ctx = b.context();
    Function *fn = b.createFunction("memprop", ctx.voidType());
    Argument *data =
        fn->addArgument(ctx.pointerTo(ctx.i64()), "data");

    BasicBlock *entry = b.createBlock("entry");
    BasicBlock *loop = b.createBlock("loop");
    BasicBlock *exit = b.createBlock("exit");
    std::int64_t trips =
        8 + static_cast<std::int64_t>(rng.below(24));

    b.setInsertPoint(entry);
    b.br(loop);
    b.setInsertPoint(loop);
    PhiInst *i = b.phi(ctx.i64(), "i");

    std::vector<Value *> pool{i, b.constI64(7)};
    auto pick = [&] { return pool[rng.below(pool.size())]; };
    auto slot_of = [&](Value *v) {
        // Clamp an arbitrary value into [0, slots).
        return b.bAnd(v, b.constI64(slots - 1));
    };

    unsigned ops = 6 + static_cast<unsigned>(rng.below(10));
    for (unsigned k = 0; k < ops; ++k) {
        switch (rng.below(5)) {
          case 0: { // load
            Value *addr =
                b.gep(ctx.i64(), data, slot_of(pick()));
            pool.push_back(b.load(addr));
            break;
          }
          case 1: { // store (possibly aliasing earlier accesses)
            Value *addr =
                b.gep(ctx.i64(), data, slot_of(pick()));
            b.store(pick(), addr);
            break;
          }
          case 2:
            pool.push_back(b.add(pick(), pick()));
            break;
          case 3:
            pool.push_back(b.mul(pick(), pick()));
            break;
          default:
            pool.push_back(b.bXor(pick(), pick()));
            break;
        }
    }
    // One guaranteed store so the kernel is observable.
    b.store(pick(), b.gep(ctx.i64(), data, slot_of(pick())));

    Value *inext = b.add(i, b.constI64(1), "i.next");
    Value *cond = b.icmp(Predicate::SLT, inext,
                         b.constI64(trips), "cond");
    b.condBr(cond, loop, exit);
    i->addIncoming(b.constI64(0), entry);
    i->addIncoming(inext, loop);
    b.setInsertPoint(exit);
    b.ret();
    return fn;
}

void
seedData(MemoryAccessor &mem, std::uint64_t base, Rng &rng)
{
    for (unsigned s = 0; s < slots; ++s) {
        mem.writeI64(base + 8ull * s,
                     static_cast<std::int64_t>(rng.next()));
    }
}

} // namespace

class EngineProperty
    : public ::testing::TestWithParam<std::uint64_t>
{};

TEST_P(EngineProperty, TimedEngineMatchesInterpreter)
{
    Rng build_rng(GetParam());
    Module mod("m");
    IRBuilder b(mod);
    Function *fn = randomMemoryKernel(b, build_rng);

    // Functional reference.
    FlatMemory golden;
    {
        Rng data_rng(GetParam() ^ 0xDA7A);
        seedData(golden, spmBase, data_rng);
        Interpreter interp(golden);
        interp.run(*fn, {RuntimeValue::fromPointer(spmBase)});
    }

    // Timed engine, in both scheduler modes and narrow/wide ports.
    for (bool sequential : {false, true}) {
        for (unsigned ports : {1u, 4u}) {
            core::DeviceConfig dev;
            dev.blockSequentialImport = sequential;
            dev.readPortsPerCycle = ports;
            dev.writePortsPerCycle = ports;
            AccelSystem sys(*fn, dev);
            mem::ScratchpadBackdoor backdoor(*sys.spm);
            Rng data_rng(GetParam() ^ 0xDA7A);
            seedData(backdoor, spmBase, data_rng);
            sys.run({RuntimeValue::fromPointer(spmBase)});

            for (unsigned s = 0; s < slots; ++s) {
                EXPECT_EQ(backdoor.readI64(spmBase + 8ull * s),
                          golden.readI64(spmBase + 8ull * s))
                    << "seed " << GetParam() << " slot " << s
                    << " sequential " << sequential << " ports "
                    << ports;
            }
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, EngineProperty,
                         ::testing::Range<std::uint64_t>(1, 16));

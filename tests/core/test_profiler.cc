/**
 * @file
 * End-to-end dynamic-CDFG profiler test: a GEMM run with profiling
 * enabled must yield a critical path whose cause attribution is
 * exact (segments sum to the sink commit cycle), whose hotspot
 * report serializes to valid JSON and folded stacks, and whose
 * memory-cause cycles agree with the engine's stall-lane counters
 * on a memory-bound configuration.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>

#include "core/compute_unit.hh"
#include "ir/ir_builder.hh"
#include "kernels/machsuite.hh"
#include "mem/backdoor.hh"
#include "mem/scratchpad.hh"
#include "obs/critical_path.hh"
#include "support/minijson.hh"

using namespace salam;
using namespace salam::core;
using namespace salam::mem;
using salam::testsupport::JsonValue;
using salam::testsupport::parseJson;

namespace
{

/**
 * Runs a GEMM through a scratchpad-backed accelerator with
 * profiling on. The scratchpad is deliberately starved (one read
 * port, multi-cycle latency) so the run is memory-bound and the
 * critical path must be dominated by memory causes.
 */
struct ProfiledGemm
{
    Simulation sim;
    ComputeUnit *cu = nullptr;
    ir::Module mod{"m"};
    ir::IRBuilder builder{mod};
    obs::CriticalPathReport report;

    explicit ProfiledGemm(unsigned read_ports = 1,
                          unsigned latency = 22)
    {
        sim.enableProfiling();

        auto kernel = kernels::makeGemm(4, 1);
        ir::Function *fn = kernel->build(builder);

        DeviceConfig dev;
        constexpr std::uint64_t spm_base = 0x10000;
        std::uint64_t spm_bytes =
            ((kernel->footprintBytes() + 0xFFF) & ~0xFFFull) +
            0x1000;

        ScratchpadConfig scfg;
        scfg.range = AddrRange{spm_base, spm_base + spm_bytes};
        scfg.latencyCycles = latency;
        scfg.readPorts = read_ports;
        scfg.writePorts = 1;
        auto &spm = sim.create<Scratchpad>("spm", dev.clockPeriod,
                                           scfg);

        CommInterfaceConfig ccfg;
        ccfg.mmrRange = AddrRange{0x2000, 0x2000 + 256};
        ccfg.dataPorts.push_back({"spm", {scfg.range}});
        auto &comm = sim.create<CommInterface>(
            "comm", dev.clockPeriod, ccfg);
        bindPorts(comm.dataPort(0), spm.port(0));
        cu = &sim.create<ComputeUnit>("acc", *fn, dev, comm);

        ScratchpadBackdoor backdoor(spm);
        kernel->seed(backdoor, spm_base);
        cu->start(kernel->args(spm_base));
        sim.run();
        sim.finalizeAll();

        report = obs::analyzeCriticalPath(
            *sim.profilers().front().second);
    }
};

TEST(Profiler, GemmCriticalPathAccountsForEveryCycle)
{
    ProfiledGemm t;
    ASSERT_TRUE(t.cu->finished());
    ASSERT_FALSE(t.sim.profilers().empty());
    EXPECT_GT(t.sim.profilers().front().second->size(), 0u);

    const obs::CriticalPathReport &r = t.report;
    EXPECT_FALSE(r.truncated);
    EXPECT_GT(r.pathCycles, 0u);
    EXPECT_GT(r.pathNodes, 0u);

    // The path cannot be longer than the run itself.
    EXPECT_LE(r.pathCycles, t.cu->cycleCount());

    // Exact attribution: every cycle on the path has one cause.
    EXPECT_EQ(r.causeTotal(), r.pathCycles);
    EXPECT_EQ(r.pathCycles, r.sinkCommitCycle);

    // Hotspot instance/cycle counts are consistent.
    std::uint64_t inst_cycles = 0;
    for (const obs::Hotspot &h : r.byInstruction) {
        EXPECT_FALSE(h.label.empty());
        inst_cycles += h.cycles();
    }
    EXPECT_EQ(inst_cycles, r.pathCycles);
}

TEST(Profiler, MemoryBoundGemmMatchesStallLanes)
{
    ProfiledGemm t;
    ASSERT_TRUE(t.cu->finished());

    // Acceptance: with the scratchpad starved (one read port,
    // 22-cycle latency) the profiler's memory-cause critical-path
    // cycles and the engine's memory-involved stall-lane counters
    // tell the same story, within 10%. The simulator is fully
    // deterministic, so this comparison is exactly reproducible.
    const EngineStats &stats = t.cu->stats();
    double lanes =
        static_cast<double>(stats.stallsInvolvingMemory());
    double path_mem = static_cast<double>(t.report.memoryCycles());
    ASSERT_GT(lanes, 0.0);
    ASSERT_GT(path_mem, 0.0);
    EXPECT_LE(std::abs(path_mem - lanes) / lanes, 0.10)
        << "profiler memory cycles " << path_mem
        << " vs stall lanes " << lanes;

    // Memory is a first-class contributor on this configuration,
    // not rounding noise.
    EXPECT_GT(path_mem, 0.1 * static_cast<double>(
                                  t.report.pathCycles));
}

TEST(Profiler, HotspotJsonAndFoldedOutputsAreWellFormed)
{
    ProfiledGemm t;

    std::ostringstream os;
    t.report.writeJson(os);
    JsonValue doc = parseJson(os.str()); // throws if malformed
    ASSERT_TRUE(doc.isObject());
    EXPECT_EQ(doc.at("schema").string, "salam-critical-path-1");
    EXPECT_GT(doc.at("path_cycles").number, 0.0);
    EXPECT_GT(doc.at("recorded_nodes").number, 0.0);
    ASSERT_TRUE(doc.at("causes").isObject());
    ASSERT_TRUE(doc.at("by_instruction").isArray());
    ASSERT_FALSE(doc.at("by_instruction").array.empty());

    const JsonValue &top = doc.at("by_instruction").array.front();
    EXPECT_FALSE(top.at("label").string.empty());
    EXPECT_FALSE(top.at("opcode").string.empty());
    EXPECT_GT(top.at("cycles").number, 0.0);
    EXPECT_GT(top.at("instances").number, 0.0);
    ASSERT_TRUE(top.at("causes").isObject());

    // Ranked by cycles, descending.
    double prev = top.at("cycles").number;
    for (const JsonValue &h : doc.at("by_instruction").array) {
        EXPECT_LE(h.at("cycles").number, prev);
        prev = h.at("cycles").number;
    }

    ASSERT_TRUE(doc.at("by_block").isArray());
    EXPECT_FALSE(doc.at("by_block").array.empty());

    // Folded stacks: "func;block;inst <count>" lines, one per
    // (instruction, cause) pair on the path.
    std::ostringstream folded;
    t.report.writeFolded(folded);
    std::istringstream lines(folded.str());
    std::string line;
    unsigned n_lines = 0;
    while (std::getline(lines, line)) {
        ++n_lines;
        EXPECT_NE(line.find(';'), std::string::npos) << line;
        auto space = line.rfind(' ');
        ASSERT_NE(space, std::string::npos) << line;
        EXPECT_GT(std::stoull(line.substr(space + 1)), 0u) << line;
    }
    EXPECT_GT(n_lines, 0u);
}

TEST(Profiler, ProfilingOffRecordsNothing)
{
    Simulation sim;
    EXPECT_FALSE(sim.profilingEnabled());
    EXPECT_TRUE(sim.profilers().empty());
}

} // namespace

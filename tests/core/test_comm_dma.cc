/** @file Tests for CommInterface MMR programming, DMA, and reports. */

#include <gtest/gtest.h>

#include "accel_fixture.hh"
#include "core/dma.hh"
#include "core/power_report.hh"
#include "mem/crossbar.hh"
#include "mem/simple_dram.hh"
#include "opt/unroll.hh"
#include "../ir/test_helpers.hh"
#include "../mem/test_harness.hh"

using namespace salam;
using namespace salam::ir;
using namespace salam::core;
using salam::test::AccelSystem;
using salam::test::TestRequester;
using salam::test::mmrBase;
using salam::test::spmBase;

TEST(CommInterface, MmrProgrammingStartsKernel)
{
    Module mod("m");
    IRBuilder b(mod);
    Function *fn = salam::test::buildVecAdd(b, 8);
    AccelSystem sys(*fn);
    for (int i = 0; i < 8; ++i) {
        std::int32_t v = i;
        sys.spm->backdoorWrite(spmBase + 4u * static_cast<unsigned>(i),
                               &v, 4);
        sys.spm->backdoorWrite(
            spmBase + 0x1000 + 4u * static_cast<unsigned>(i), &v, 4);
    }

    bool irq_fired = false;
    sys.comm->setIrqCallback([&] { irq_fired = true; });

    // Program the accelerator the way a host driver would: args into
    // regs 1..3, then control with start | irq-enable.
    TestRequester host(sys.sim, "host");
    mem::bindPorts(host, sys.comm->mmrPort());
    host.write(0, mmrBase + 8, spmBase, 8);
    host.write(10, mmrBase + 16, spmBase + 0x1000, 8);
    host.write(20, mmrBase + 24, spmBase + 0x2000, 8);
    host.write(30, mmrBase,
               ctrl_bits::start | ctrl_bits::irqEnable, 8);
    sys.sim.run();

    EXPECT_TRUE(sys.cu->finished());
    EXPECT_TRUE(sys.comm->done());
    EXPECT_FALSE(sys.comm->running());
    EXPECT_TRUE(irq_fired);
    std::int32_t got = 0;
    sys.spm->backdoorRead(spmBase + 0x2000 + 12, &got, 4);
    EXPECT_EQ(got, 6);

    // Host reads status back over the bus.
    auto *status = host.read(sys.sim.curTick() + 10, mmrBase, 8);
    sys.sim.run();
    std::uint64_t status_val = 0;
    status->copyData(&status_val, 8);
    EXPECT_TRUE(status_val & ctrl_bits::done);
}

TEST(CommInterface, RegisterFileReadWrite)
{
    Module mod("m");
    IRBuilder b(mod);
    Function *fn = salam::test::buildVecAdd(b, 4);
    AccelSystem sys(*fn);
    sys.comm->writeReg(5, 0xCAFEBABE);
    EXPECT_EQ(sys.comm->readReg(5), 0xCAFEBABEu);
    EXPECT_EQ(sys.comm->readReg(6), 0u);
}

TEST(Dma, MovesDataBetweenDramAndSpm)
{
    Simulation sim;
    mem::DramConfig dcfg;
    dcfg.range = mem::AddrRange{0x8000'0000, 0x8010'0000};
    auto &dram = sim.create<mem::SimpleDram>("dram", 1000, dcfg);

    mem::ScratchpadConfig scfg;
    scfg.range = mem::AddrRange{0x10000, 0x20000};
    auto &spm = sim.create<mem::Scratchpad>("spm", 10, scfg);

    auto &xbar = sim.create<mem::Crossbar>("xbar", 10);
    xbar.connectDevice(dram.port(), dcfg.range);
    xbar.connectDevice(spm.port(0), scfg.range);

    DmaConfig dma_cfg;
    dma_cfg.mmrRange = mem::AddrRange{0x3000, 0x3000 + 32};
    auto &dma = sim.create<Dma>("dma", 10, dma_cfg);
    mem::bindPorts(dma.dataPort(), xbar.addRequester("dma"));

    // Seed DRAM, DMA into the SPM.
    std::vector<std::uint8_t> payload(1024);
    for (std::size_t i = 0; i < payload.size(); ++i)
        payload[i] = static_cast<std::uint8_t>(i * 7);
    dram.backdoorWrite(0x8000'0000, payload.data(), payload.size());

    bool irq = false;
    dma.setIrqCallback([&] { irq = true; });
    dma.writeReg(0, ctrl_bits::irqEnable);
    dma.startTransfer(0x8000'0000, 0x10000, 1024);
    sim.run();

    EXPECT_TRUE(dma.done());
    EXPECT_FALSE(dma.busy());
    EXPECT_TRUE(irq);
    EXPECT_EQ(dma.bytesMoved(), 1024u);
    std::vector<std::uint8_t> got(1024);
    spm.backdoorRead(0x10000, got.data(), got.size());
    EXPECT_EQ(got, payload);
}

TEST(Dma, MmrProgrammedTransfer)
{
    Simulation sim;
    mem::ScratchpadConfig scfg;
    scfg.range = mem::AddrRange{0x10000, 0x20000};
    auto &spm = sim.create<mem::Scratchpad>("spm", 10, scfg);

    DmaConfig dma_cfg;
    dma_cfg.mmrRange = mem::AddrRange{0x3000, 0x3000 + 32};
    auto &dma = sim.create<Dma>("dma", 10, dma_cfg);
    mem::bindPorts(dma.dataPort(), spm.port(0));

    std::uint64_t magic = 0xFEEDFACE;
    spm.backdoorWrite(0x10000, &magic, 8);

    TestRequester host(sim, "host");
    mem::bindPorts(host, dma.mmrPort());
    host.write(0, 0x3008, 0x10000, 8);  // src
    host.write(10, 0x3010, 0x11000, 8); // dst
    host.write(20, 0x3018, 8, 8);       // len
    host.write(30, 0x3000, ctrl_bits::start, 8);
    sim.run();

    std::uint64_t got = 0;
    spm.backdoorRead(0x11000, &got, 8);
    EXPECT_EQ(got, magic);
    EXPECT_TRUE(dma.done());
}

TEST(Dma, LargeTransferRespectsBurstAccounting)
{
    Simulation sim;
    mem::ScratchpadConfig scfg;
    scfg.range = mem::AddrRange{0x10000, 0x40000};
    auto &spm = sim.create<mem::Scratchpad>("spm", 10, scfg);
    DmaConfig dma_cfg;
    dma_cfg.mmrRange = mem::AddrRange{0x3000, 0x3020};
    dma_cfg.burstBytes = 64;
    dma_cfg.maxOutstanding = 2;
    auto &dma = sim.create<Dma>("dma", 10, dma_cfg);
    mem::bindPorts(dma.dataPort(), spm.port(0));

    dma.startTransfer(0x10000, 0x20000, 4096);
    sim.run();
    EXPECT_EQ(dma.bytesMoved(), 4096u);
    EXPECT_GT(dma.lastTransferTicks(), 0u);
}

TEST(PowerReport, BreakdownFieldsArePopulated)
{
    Module mod("m");
    IRBuilder b(mod);
    Function *fn = salam::test::buildVecAdd(b, 32);
    AccelSystem sys(*fn);
    sys.run({RuntimeValue::fromPointer(spmBase),
             RuntimeValue::fromPointer(spmBase + 0x1000),
             RuntimeValue::fromPointer(spmBase + 0x2000)});

    AcceleratorReport report = buildReport(*sys.cu, sys.spm);
    EXPECT_GT(report.cycles, 0u);
    EXPECT_GT(report.runtimeNs, 0.0);
    EXPECT_GT(report.power.dynamicFuMw, 0.0);
    EXPECT_GT(report.power.dynamicRegisterMw, 0.0);
    EXPECT_GT(report.power.dynamicSpmReadMw, 0.0);
    EXPECT_GT(report.power.dynamicSpmWriteMw, 0.0);
    EXPECT_GT(report.power.staticFuMw, 0.0);
    EXPECT_GT(report.power.staticRegisterMw, 0.0);
    EXPECT_GT(report.power.staticSpmMw, 0.0);
    EXPECT_GT(report.area.totalUm2(), 0.0);
    EXPECT_NEAR(report.power.totalMw(),
                report.power.dynamicTotalMw() +
                    report.power.staticTotalMw(),
                1e-12);
}

TEST(StaticCdfg, FuDemandsMatchStaticInstructions)
{
    Module mod("m");
    IRBuilder b(mod);
    Function *fn = salam::test::buildVecAdd(b, 16);
    DeviceConfig dev;
    StaticCdfg cdfg(*fn, dev);

    // vecadd loop: 2 GEPs + 1 pointer add... GEPs map to IntAdder;
    // the i32 add and the i64 increment also IntAdder -> 5 total.
    EXPECT_EQ(cdfg.fuDemand(hw::FuType::IntAdder), 5u);
    EXPECT_EQ(cdfg.fuDemand(hw::FuType::Comparator), 1u);
    EXPECT_EQ(cdfg.fuCount(hw::FuType::IntAdder), 5u);
    EXPECT_GT(cdfg.registerBits(), 0u);

    // Capping adders to 2 shrinks the instantiated pool.
    DeviceConfig capped;
    capped.setFuLimit(hw::FuType::IntAdder, 2);
    StaticCdfg small(*fn, capped);
    EXPECT_EQ(small.fuCount(hw::FuType::IntAdder), 2u);
    EXPECT_LT(small.area().fuUm2, cdfg.area().fuUm2);
    EXPECT_LT(small.staticFuPowerMw(), cdfg.staticFuPowerMw());
}

TEST(StaticCdfg, UnrollingGrowsDatapath)
{
    Module mod("m");
    IRBuilder b(mod);
    Function *fn = salam::test::buildVecAdd(b, 16);
    DeviceConfig dev;
    StaticCdfg before(*fn, dev);
    opt::Unroller::unrollByLabel(*fn, "loop", 4);
    StaticCdfg after(*fn, dev);
    EXPECT_GT(after.fuDemand(hw::FuType::IntAdder),
              before.fuDemand(hw::FuType::IntAdder));
    EXPECT_GT(after.registerBits(), before.registerBits());
    EXPECT_GT(after.area().totalUm2(), before.area().totalUm2());
}

/** @file Accelerator-through-cache integration tests. */

#include <gtest/gtest.h>

#include "core/compute_unit.hh"
#include "mem/backdoor.hh"
#include "mem/cache.hh"
#include "kernels/machsuite.hh"
#include "mem/simple_dram.hh"
#include "../ir/test_helpers.hh"

using namespace salam;
using namespace salam::ir;
using namespace salam::core;
using namespace salam::mem;

namespace
{

/** Accelerator -> L1 cache -> DRAM. */
struct CachedAccel
{
    Simulation sim;
    SimpleDram *dram = nullptr;
    Cache *cache = nullptr;
    CommInterface *comm = nullptr;
    ComputeUnit *cu = nullptr;

    CachedAccel(const Function &fn, const CacheConfig &ccfg)
    {
        DeviceConfig dev;
        DramConfig dcfg;
        dcfg.range = AddrRange{0, 1 << 20};
        dcfg.accessLatency = 40'000;
        dram = &sim.create<SimpleDram>("dram", 1000, dcfg);
        cache = &sim.create<Cache>("l1", dev.clockPeriod, ccfg);
        bindPorts(cache->memSide(), dram->port());

        CommInterfaceConfig icfg;
        icfg.mmrRange = AddrRange{0x8000'0000, 0x8000'0000 + 256};
        icfg.dataPorts.push_back({"cache", {dcfg.range}});
        comm = &sim.create<CommInterface>("comm", dev.clockPeriod,
                                          icfg);
        bindPorts(comm->dataPort(0), cache->cpuSide());
        cu = &sim.create<ComputeUnit>("acc", fn, dev, *comm);
    }
};

} // namespace

TEST(CachedAccelerator, VecAddCorrectThroughCache)
{
    Module mod("m");
    IRBuilder b(mod);
    Function *fn = salam::test::buildVecAdd(b, 32);

    CachedAccel s(*fn, CacheConfig{});
    for (int i = 0; i < 32; ++i) {
        std::int32_t va = 2 * i, vb = 7 - i;
        s.dram->backdoorWrite(0x100 + 4u * static_cast<unsigned>(i),
                              &va, 4);
        s.dram->backdoorWrite(0x400 + 4u * static_cast<unsigned>(i),
                              &vb, 4);
    }
    s.cu->start({RuntimeValue::fromPointer(0x100),
                 RuntimeValue::fromPointer(0x400),
                 RuntimeValue::fromPointer(0x800)});
    s.sim.run();
    ASSERT_TRUE(s.cu->finished());

    // Results written back through the cache hierarchy. Read the
    // cached view (dirty lines may not have reached DRAM).
    EXPECT_GT(s.cache->hitCount(), 0u);
    EXPECT_GT(s.cache->missCount(), 0u);
    // Spatial locality: 8 i32 per 32B block -> most accesses hit.
    EXPECT_LT(s.cache->missRate(), 0.3);
}

TEST(CachedAccelerator, LargerCacheCapturesReuse)
{
    // GEMM re-reads m2 across outer iterations: a cache that holds
    // the working set converts those into hits; a tiny one cannot.
    // (A pure streaming kernel shows no such effect — coalescing
    // hides the block window regardless of capacity.)
    auto run_with = [](std::uint64_t cache_bytes,
                       std::uint64_t *misses) {
        Module mod("m");
        IRBuilder b(mod);
        auto kernel = kernels::makeGemm(8, 1);
        Function *fn = kernel->build(b);
        CacheConfig ccfg;
        ccfg.sizeBytes = cache_bytes;
        ccfg.blockBytes = 32;
        ccfg.associativity = 4;
        CachedAccel s(*fn, ccfg);
        FlatMemory staging;
        kernel->seed(staging, 0x1000);
        // Copy the staged dataset into DRAM.
        std::vector<std::uint8_t> bytes(kernel->footprintBytes());
        staging.readBytes(0x1000, bytes.size(), bytes.data());
        s.dram->backdoorWrite(0x1000, bytes.data(), bytes.size());
        s.cu->start(kernel->args(0x1000));
        s.sim.run();
        *misses = s.cache->missCount();
        return s.cu->cycleCount();
    };
    std::uint64_t small_misses = 0, big_misses = 0;
    std::uint64_t small_cycles = run_with(128, &small_misses);
    std::uint64_t big_cycles = run_with(8192, &big_misses);
    EXPECT_GT(small_misses, big_misses);
    EXPECT_GT(small_cycles, big_cycles);
}

TEST(CachedAccelerator, MemoryCoherentThroughWriteback)
{
    // Store then reload after capacity eviction: data must round-
    // trip through DRAM correctly.
    Module mod("m");
    IRBuilder b(mod);
    Context &ctx = b.context();
    Function *fn = b.createFunction("wb", ctx.i64());
    Argument *p = fn->addArgument(ctx.pointerTo(ctx.i64()), "p");
    Argument *q = fn->addArgument(ctx.pointerTo(ctx.i64()), "q");
    BasicBlock *entry = b.createBlock("entry");
    BasicBlock *loop = b.createBlock("loop");
    BasicBlock *check = b.createBlock("check");
    b.setInsertPoint(entry);
    b.store(b.constI64(0xABCD), p);
    b.br(loop);
    // Touch 64 distinct blocks through q to evict p's line.
    b.setInsertPoint(loop);
    PhiInst *i = b.phi(ctx.i64(), "i");
    Value *addr = b.gep(ctx.i64(), q,
                        b.mul(i, b.constI64(8), "i8"), "addr");
    b.store(i, addr);
    Value *inext = b.add(i, b.constI64(1), "i.next");
    Value *cond =
        b.icmp(Predicate::SLT, inext, b.constI64(64), "cond");
    b.condBr(cond, loop, check);
    i->addIncoming(b.constI64(0), entry);
    i->addIncoming(inext, loop);
    b.setInsertPoint(check);
    Value *v = b.load(p, "v");
    b.ret(v);

    CacheConfig small;
    small.sizeBytes = 256;
    small.blockBytes = 32;
    small.associativity = 1;
    CachedAccel s(*fn, small);
    s.cu->start({RuntimeValue::fromPointer(0x100),
                 RuntimeValue::fromPointer(0x1000)});
    s.sim.run();
    ASSERT_TRUE(s.cu->finished());
    EXPECT_GT(s.cache->writebackCount(), 0u);
}

/** @file Tests for the dynamic runtime engine (execute-in-execute). */

#include <gtest/gtest.h>

#include "accel_fixture.hh"
#include "opt/fold.hh"
#include "opt/unroll.hh"
#include "../ir/test_helpers.hh"

using namespace salam;
using namespace salam::ir;
using namespace salam::core;
using salam::test::AccelSystem;
using salam::test::spmBase;

namespace
{

/** Build daxpy: y[i] = a * x[i] + y[i] over n doubles. */
Function *
buildDaxpy(IRBuilder &b, std::int64_t n)
{
    Context &ctx = b.context();
    Function *fn = b.createFunction("daxpy", ctx.voidType());
    Argument *a = fn->addArgument(ctx.doubleType(), "a");
    Argument *x = fn->addArgument(ctx.pointerTo(ctx.doubleType()),
                                  "x");
    Argument *y = fn->addArgument(ctx.pointerTo(ctx.doubleType()),
                                  "y");

    BasicBlock *entry = b.createBlock("entry");
    BasicBlock *loop = b.createBlock("loop");
    BasicBlock *exit = b.createBlock("exit");

    b.setInsertPoint(entry);
    b.br(loop);
    b.setInsertPoint(loop);
    PhiInst *i = b.phi(ctx.i64(), "i");
    Value *px = b.gep(ctx.doubleType(), x, i, "px");
    Value *py = b.gep(ctx.doubleType(), y, i, "py");
    Value *vx = b.load(px, "vx");
    Value *vy = b.load(py, "vy");
    Value *ax = b.fmul(a, vx, "ax");
    Value *sum = b.fadd(ax, vy, "sum");
    b.store(sum, py);
    Value *inext = b.add(i, b.constI64(1), "i.next");
    Value *cond = b.icmp(Predicate::SLT, inext, b.constI64(n),
                         "cond");
    b.condBr(cond, loop, exit);
    i->addIncoming(b.constI64(0), entry);
    i->addIncoming(inext, loop);
    b.setInsertPoint(exit);
    b.ret();
    return fn;
}

/**
 * Guarded-shift kernel (the Table I motif): out[i] = v > thresh ?
 * v << 1 : v, with the shift behind a real branch.
 */
Function *
buildGuardedShift(IRBuilder &b, std::int64_t n)
{
    Context &ctx = b.context();
    Function *fn = b.createFunction("guarded", ctx.voidType());
    Argument *in = fn->addArgument(ctx.pointerTo(ctx.i64()), "in");
    Argument *out = fn->addArgument(ctx.pointerTo(ctx.i64()), "out");
    Argument *thresh = fn->addArgument(ctx.i64(), "thresh");

    BasicBlock *entry = b.createBlock("entry");
    BasicBlock *loop = b.createBlock("loop");
    BasicBlock *then = b.createBlock("then");
    BasicBlock *merge = b.createBlock("merge");
    BasicBlock *exit = b.createBlock("exit");

    b.setInsertPoint(entry);
    b.br(loop);

    b.setInsertPoint(loop);
    PhiInst *i = b.phi(ctx.i64(), "i");
    Value *pin = b.gep(ctx.i64(), in, i, "pin");
    Value *v = b.load(pin, "v");
    Value *big = b.icmp(Predicate::SGT, v, thresh, "big");
    b.condBr(big, then, merge);

    b.setInsertPoint(then);
    Value *shifted = b.shl(v, b.constI64(1), "shifted");
    b.br(merge);

    b.setInsertPoint(merge);
    PhiInst *res = b.phi(ctx.i64(), "res");
    res->addIncoming(v, loop);
    res->addIncoming(shifted, then);
    Value *pout = b.gep(ctx.i64(), out, i, "pout");
    b.store(res, pout);
    Value *inext = b.add(i, b.constI64(1), "i.next");
    Value *cond = b.icmp(Predicate::SLT, inext, b.constI64(n),
                         "cond");
    b.condBr(cond, loop, exit);
    i->addIncoming(b.constI64(0), entry);
    i->addIncoming(inext, merge);

    b.setInsertPoint(exit);
    b.ret();
    return fn;
}

} // namespace

TEST(RuntimeEngine, VecAddMatchesInterpreter)
{
    Module mod("m");
    IRBuilder b(mod);
    Function *fn = salam::test::buildVecAdd(b, 32);

    AccelSystem sys(*fn);
    const std::uint64_t a = spmBase, bb = spmBase + 0x1000,
                        c = spmBase + 0x2000;
    for (int i = 0; i < 32; ++i) {
        std::int32_t va = 3 * i - 5, vb = 7 * i + 2;
        sys.spm->backdoorWrite(a + 4u * static_cast<unsigned>(i),
                               &va, 4);
        sys.spm->backdoorWrite(bb + 4u * static_cast<unsigned>(i),
                               &vb, 4);
    }
    std::uint64_t cycles =
        sys.run({RuntimeValue::fromPointer(a),
                 RuntimeValue::fromPointer(bb),
                 RuntimeValue::fromPointer(c)});

    for (int i = 0; i < 32; ++i) {
        std::int32_t got = 0;
        sys.spm->backdoorRead(c + 4u * static_cast<unsigned>(i),
                              &got, 4);
        EXPECT_EQ(got, (3 * i - 5) + (7 * i + 2)) << "i=" << i;
    }
    // Sanity: the run takes at least one cycle per iteration and
    // less than a fully serialized schedule would.
    EXPECT_GT(cycles, 32u);
    EXPECT_LT(cycles, 32u * 12u);
}

TEST(RuntimeEngine, DaxpyFloatingPointCorrect)
{
    Module mod("m");
    IRBuilder b(mod);
    Function *fn = buildDaxpy(b, 16);

    AccelSystem sys(*fn);
    const std::uint64_t x = spmBase, y = spmBase + 0x1000;
    for (int i = 0; i < 16; ++i) {
        double vx = 0.5 * i, vy = 100.0 - i;
        sys.spm->backdoorWrite(x + 8u * static_cast<unsigned>(i),
                               &vx, 8);
        sys.spm->backdoorWrite(y + 8u * static_cast<unsigned>(i),
                               &vy, 8);
    }
    sys.run({RuntimeValue::fromDouble(2.0),
             RuntimeValue::fromPointer(x),
             RuntimeValue::fromPointer(y)});
    for (int i = 0; i < 16; ++i) {
        double got = 0;
        sys.spm->backdoorRead(y + 8u * static_cast<unsigned>(i),
                              &got, 8);
        EXPECT_DOUBLE_EQ(got, 2.0 * (0.5 * i) + (100.0 - i));
    }
}

TEST(RuntimeEngine, UnrollingReducesCycles)
{
    auto cycles_for = [](std::uint64_t factor) {
        Module mod("m");
        IRBuilder b(mod);
        Function *fn = salam::test::buildVecAdd(b, 64);
        if (factor > 1) {
            opt::Unroller::unrollByLabel(*fn, "loop", factor);
            opt::cleanup(*fn);
        }

        core::DeviceConfig dev;
        dev.readPortsPerCycle = 8;
        dev.writePortsPerCycle = 8;
        mem::ScratchpadConfig scfg = AccelSystem::defaultSpm();
        scfg.readPorts = 8;
        scfg.writePorts = 8;
        AccelSystem sys(*fn, dev, scfg);
        return sys.run({RuntimeValue::fromPointer(spmBase),
                        RuntimeValue::fromPointer(spmBase + 0x1000),
                        RuntimeValue::fromPointer(spmBase + 0x2000)});
    };

    std::uint64_t base = cycles_for(1);
    std::uint64_t unroll4 = cycles_for(4);
    std::uint64_t unroll16 = cycles_for(16);
    EXPECT_LT(unroll4, base);
    EXPECT_LT(unroll16, unroll4);
}

TEST(RuntimeEngine, DataDependentControlExecutesCorrectly)
{
    Module mod("m");
    IRBuilder b(mod);
    Function *fn = buildGuardedShift(b, 16);

    AccelSystem sys(*fn);
    const std::uint64_t in = spmBase, out = spmBase + 0x1000;
    for (int i = 0; i < 16; ++i) {
        std::int64_t v = (i % 3 == 0) ? 100 + i : i;
        sys.spm->backdoorWrite(in + 8u * static_cast<unsigned>(i),
                               &v, 8);
    }
    sys.run({RuntimeValue::fromPointer(in),
             RuntimeValue::fromPointer(out),
             RuntimeValue::fromInt(mod.context().i64(), 50)});
    for (int i = 0; i < 16; ++i) {
        std::int64_t got = 0;
        sys.spm->backdoorRead(out + 8u * static_cast<unsigned>(i),
                              &got, 8);
        std::int64_t v = (i % 3 == 0) ? 100 + i : i;
        EXPECT_EQ(got, v > 50 ? v << 1 : v) << "i=" << i;
    }
}

TEST(RuntimeEngine, DataDependentCyclesVaryWithInput)
{
    // The same kernel takes longer when the guarded path triggers —
    // the execute-in-execute property Table I motivates.
    auto cycles_for = [](bool trigger) {
        Module mod("m");
        IRBuilder b(mod);
        Function *fn = buildGuardedShift(b, 64);
        AccelSystem sys(*fn);
        for (int i = 0; i < 64; ++i) {
            std::int64_t v = trigger ? 100 : 1;
            sys.spm->backdoorWrite(
                spmBase + 8u * static_cast<unsigned>(i), &v, 8);
        }
        return sys.run(
            {RuntimeValue::fromPointer(spmBase),
             RuntimeValue::fromPointer(spmBase + 0x1000),
             RuntimeValue::fromInt(mod.context().i64(), 50)});
    };
    std::uint64_t fast = cycles_for(false);
    std::uint64_t slow = cycles_for(true);
    EXPECT_GT(slow, fast);
}

TEST(RuntimeEngine, FuLimitsForceReuseAndSlowdown)
{
    auto cycles_for = [](unsigned fadd_limit) {
        Module mod("m");
        IRBuilder b(mod);
        Function *fn = buildDaxpy(b, 32);
        opt::Unroller::unrollByLabel(*fn, "loop", 8);
        opt::cleanup(*fn);

        core::DeviceConfig dev;
        dev.readPortsPerCycle = 16;
        dev.writePortsPerCycle = 16;
        if (fadd_limit > 0) {
            dev.setFuLimit(hw::FuType::FpAddSubDouble, fadd_limit);
            dev.setFuLimit(hw::FuType::FpMultiplierDouble,
                           fadd_limit);
        }
        mem::ScratchpadConfig scfg = AccelSystem::defaultSpm();
        scfg.readPorts = 16;
        scfg.writePorts = 16;
        AccelSystem sys(*fn, dev, scfg);
        for (int i = 0; i < 32; ++i) {
            double v = i;
            sys.spm->backdoorWrite(
                spmBase + 8u * static_cast<unsigned>(i), &v, 8);
            sys.spm->backdoorWrite(
                spmBase + 0x1000 + 8u * static_cast<unsigned>(i),
                &v, 8);
        }
        return sys.run({RuntimeValue::fromDouble(1.5),
                        RuntimeValue::fromPointer(spmBase),
                        RuntimeValue::fromPointer(spmBase + 0x1000)});
    };

    std::uint64_t unconstrained = cycles_for(0);
    std::uint64_t one_unit = cycles_for(1);
    EXPECT_GT(one_unit, unconstrained);
}

TEST(RuntimeEngine, ReadPortSweepChangesRuntime)
{
    auto cycles_for = [](unsigned ports) {
        Module mod("m");
        IRBuilder b(mod);
        Function *fn = salam::test::buildVecAdd(b, 64);
        opt::Unroller::unrollByLabel(*fn, "loop", 16);
        opt::cleanup(*fn);

        core::DeviceConfig dev;
        dev.readPortsPerCycle = ports;
        dev.writePortsPerCycle = ports;
        mem::ScratchpadConfig scfg = AccelSystem::defaultSpm();
        scfg.readPorts = ports;
        scfg.writePorts = ports;
        AccelSystem sys(*fn, dev, scfg);
        return sys.run({RuntimeValue::fromPointer(spmBase),
                        RuntimeValue::fromPointer(spmBase + 0x1000),
                        RuntimeValue::fromPointer(spmBase + 0x2000)});
    };

    std::uint64_t wide = cycles_for(16);
    std::uint64_t narrow = cycles_for(1);
    EXPECT_GT(narrow, wide);
}

TEST(RuntimeEngine, StatsAreConsistent)
{
    Module mod("m");
    IRBuilder b(mod);
    Function *fn = salam::test::buildVecAdd(b, 32);
    AccelSystem sys(*fn);
    sys.run({RuntimeValue::fromPointer(spmBase),
             RuntimeValue::fromPointer(spmBase + 0x1000),
             RuntimeValue::fromPointer(spmBase + 0x2000)});

    const EngineStats &stats = sys.cu->stats();
    EXPECT_EQ(stats.newExecCycles + stats.stallCycles,
              stats.totalCycles);
    EXPECT_EQ(stats.loadsIssued, 64u);  // 2 loads x 32 iterations
    EXPECT_EQ(stats.storesIssued, 32u); // 1 store x 32 iterations
    EXPECT_GT(stats.dynamicInstructions, 32u * 8u);
    EXPECT_GT(stats.fuEnergyPj, 0.0);
    EXPECT_GT(stats.registerReadEnergyPj, 0.0);
    EXPECT_GT(stats.registerWriteEnergyPj, 0.0);
}

TEST(RuntimeEngine, MemoryOrderingPreservesRaw)
{
    // p[0] = a; then q[i] = p[0] (read-after-write through memory).
    Module mod("m");
    IRBuilder b(mod);
    Context &ctx = b.context();
    Function *fn = b.createFunction("raw", ctx.voidType());
    Argument *p = fn->addArgument(ctx.pointerTo(ctx.i64()), "p");
    Argument *q = fn->addArgument(ctx.pointerTo(ctx.i64()), "q");
    BasicBlock *entry = b.createBlock("entry");
    b.setInsertPoint(entry);
    b.store(b.constI64(1234), p);
    Value *v = b.load(p, "v");
    b.store(v, q);
    b.ret();

    AccelSystem sys(*fn);
    sys.run({RuntimeValue::fromPointer(spmBase),
             RuntimeValue::fromPointer(spmBase + 0x100)});
    std::int64_t got = 0;
    sys.spm->backdoorRead(spmBase + 0x100, &got, 8);
    EXPECT_EQ(got, 1234);
}

TEST(RuntimeEngine, SumSquaresReturnsThroughRet)
{
    Module mod("m");
    IRBuilder b(mod);
    Function *fn = salam::test::buildSumSquares(b, 10);
    AccelSystem sys(*fn);
    std::uint64_t cycles = sys.run({});
    EXPECT_GT(cycles, 10u);
}

/** @file Full-system integration tests: host + DMA + accelerator. */

#include <gtest/gtest.h>

#include "kernels/machsuite.hh"
#include "mem/backdoor.hh"
#include "sys/system.hh"
#include "../ir/test_helpers.hh"

using namespace salam;
using namespace salam::ir;
using namespace salam::mem;
using namespace salam::core;
using namespace salam::sys;

namespace
{

/** Common scenario: one cluster, one accelerator, private SPM. */
struct SingleAccelSystem
{
    Simulation sim;
    SalamSystem sys{sim};
    AcceleratorCluster *cluster = nullptr;
    Scratchpad *spm = nullptr;
    Dma *dma = nullptr;
    unsigned dmaIrq = 0;
    ClusterAccelerator *accel = nullptr;

    SingleAccelSystem(const Function &fn, std::uint64_t spm_bytes,
                      DeviceConfig dev = {})
    {
        cluster = &sys.addCluster("cluster0", dev.clockPeriod);

        ScratchpadConfig sproto;
        sproto.readPorts = 4;
        sproto.writePorts = 4;
        sproto.numPorts = 2; // accelerator + DMA-side via xbar
        spm = &cluster->addSpm("spm", spm_bytes, sproto, false);
        // Port 1 reachable from the local xbar (for DMA fills).
        cluster->localXbar().connectDevice(spm->port(1),
                                           spm->config().range);

        dma = &cluster->addDma("dma");
        dmaIrq = sys.allocateIrq();
        dma->setIrqCallback(sys.gic().lineCallback(dmaIrq));

        accel = &cluster->addAccelerator(
            "acc", fn, dev,
            {{"spm", {spm->config().range}, false}});
        bindPorts(accel->comm->dataPort(0), spm->port(0));
    }
};

} // namespace

TEST(FullSystem, HostDmaAcceleratorRoundTrip)
{
    // vecadd over data staged in DRAM, DMAed to the SPM, computed,
    // and DMAed back — the full Fig. 1 flow.
    Module mod("m");
    IRBuilder b(mod);
    Function *fn = salam::test::buildVecAdd(b, 32);

    SingleAccelSystem s(*fn, 64 * 1024);
    const std::uint64_t dram_in = SystemAddressMap::dramBase;
    const std::uint64_t dram_out = SystemAddressMap::dramBase + 0x4000;
    std::uint64_t spm_base = s.spm->config().range.start;
    const std::uint64_t a = spm_base, bb = spm_base + 0x400,
                        c = spm_base + 0x800;

    for (int i = 0; i < 32; ++i) {
        std::int32_t va = i, vb = 1000 + i;
        s.sys.dram().backdoorWrite(
            dram_in + 4u * static_cast<unsigned>(i), &va, 4);
        s.sys.dram().backdoorWrite(
            dram_in + 0x400 + 4u * static_cast<unsigned>(i), &vb,
            4);
    }

    DriverCpu &host = s.sys.host();
    // DMA both inputs in.
    driver::pushDmaTransfer(host, s.dma->config().mmrRange.start,
                            dram_in, a, 128);
    host.push(HostOp::waitIrq(s.dmaIrq));
    driver::pushDmaTransfer(host, s.dma->config().mmrRange.start,
                            dram_in + 0x400, bb, 128);
    host.push(HostOp::waitIrq(s.dmaIrq));
    host.push(HostOp::mark("compute.begin"));
    driver::pushAcceleratorStart(host, *s.accel, {a, bb, c});
    host.push(HostOp::waitIrq(s.accel->irqId));
    host.push(HostOp::mark("compute.end"));
    // DMA the result out.
    driver::pushDmaTransfer(host, s.dma->config().mmrRange.start, c,
                            dram_out, 128);
    host.push(HostOp::waitIrq(s.dmaIrq));

    s.sys.run();

    EXPECT_TRUE(s.accel->cu->finished());
    for (int i = 0; i < 32; ++i) {
        std::int32_t got = 0;
        s.sys.dram().backdoorRead(
            dram_out + 4u * static_cast<unsigned>(i), &got, 4);
        EXPECT_EQ(got, 1000 + 2 * i) << "i=" << i;
    }
    EXPECT_GT(host.markAt("compute.end"),
              host.markAt("compute.begin"));
    EXPECT_GE(s.sys.gic().interruptsRaised(), 4u);
}

TEST(FullSystem, PollingInsteadOfInterrupts)
{
    Module mod("m");
    IRBuilder b(mod);
    Function *fn = salam::test::buildSumSquares(b, 8);

    Simulation sim;
    SalamSystem sys(sim);
    auto &cluster = sys.addCluster("c0", periodFromMhz(100));
    auto &accel = cluster.addAccelerator("acc", *fn, {}, {});

    DriverCpu &host = sys.host();
    driver::pushAcceleratorStart(host, accel, {},
                                 /*irq_enable=*/false);
    host.push(HostOp::poll(accel.ctrlAddr(), ctrl_bits::done,
                           ctrl_bits::done));
    sys.run();
    EXPECT_TRUE(accel.cu->finished());
    EXPECT_TRUE(host.finished());
}

TEST(FullSystem, AcceleratorReadsDramThroughBridge)
{
    // No SPM at all: the accelerator's data port routes through the
    // local crossbar and the bridge straight to DRAM.
    Module mod("m");
    IRBuilder b(mod);
    Function *fn = salam::test::buildVecAdd(b, 8);

    Simulation sim;
    SalamSystem sys(sim);
    auto &cluster = sys.addCluster("c0", periodFromMhz(100));
    auto &accel = cluster.addAccelerator(
        "acc", *fn, {},
        {{"mem", {sys.config().dram.range}, true}});

    const std::uint64_t base = SystemAddressMap::dramBase + 0x1000;
    for (int i = 0; i < 8; ++i) {
        std::int32_t v = 5 * i;
        sys.dram().backdoorWrite(
            base + 4u * static_cast<unsigned>(i), &v, 4);
        sys.dram().backdoorWrite(
            base + 0x100 + 4u * static_cast<unsigned>(i), &v, 4);
    }
    DriverCpu &host = sys.host();
    driver::pushAcceleratorStart(host, accel,
                                 {base, base + 0x100, base + 0x200});
    host.push(HostOp::waitIrq(accel.irqId));
    sys.run();

    for (int i = 0; i < 8; ++i) {
        std::int32_t got = 0;
        sys.dram().backdoorRead(
            base + 0x200 + 4u * static_cast<unsigned>(i), &got, 4);
        EXPECT_EQ(got, 10 * i);
    }
}

TEST(FullSystem, TwoAcceleratorsSharedSpm)
{
    // acc0 (relu) then acc1 (maxpool) over a shared scratchpad;
    // host sequences them with interrupts — the Fig. 16(b) shape.
    using namespace salam::kernels;
    auto relu = makeRelu(64);
    auto pool = makeMaxPool(8, 8);

    Module mod("m");
    IRBuilder b(mod);
    Function *relu_fn = relu->build(b);
    Function *pool_fn = pool->build(b);

    Simulation sim;
    SalamSystem sys(sim);
    auto &cluster = sys.addCluster("c0", periodFromMhz(100));

    ScratchpadConfig sproto;
    sproto.readPorts = 4;
    sproto.writePorts = 4;
    auto &shared = cluster.addSpm("shared", 64 * 1024, sproto, true);
    std::uint64_t base = shared.config().range.start;

    auto &acc_relu = cluster.addAccelerator(
        "relu", *relu_fn, {},
        {{"mem", {shared.config().range}, true}});
    auto &acc_pool = cluster.addAccelerator(
        "pool", *pool_fn, {},
        {{"mem", {shared.config().range}, true}});

    // Layout in the shared SPM: in[64], mid[64], rowbuf, out[16].
    std::uint64_t in = base, mid = base + 0x400,
                  rowbuf = base + 0x800, out = base + 0xC00;
    ScratchpadBackdoor backdoor(shared);
    Lcg rng(7);
    std::vector<float> input(64);
    for (unsigned i = 0; i < 64; ++i) {
        input[i] = static_cast<float>(rng.nextDouble()) - 0.5f;
        backdoor.writeF32(in + 4ull * i, input[i]);
    }

    DriverCpu &host = sys.host();
    driver::pushAcceleratorStart(host, acc_relu, {in, mid});
    host.push(HostOp::waitIrq(acc_relu.irqId));
    driver::pushAcceleratorStart(host, acc_pool,
                                 {mid, rowbuf, out});
    host.push(HostOp::waitIrq(acc_pool.irqId));
    sys.run();

    for (unsigned r = 0; r < 4; ++r) {
        for (unsigned c = 0; c < 4; ++c) {
            float expected = -1e30f;
            for (unsigned dr = 0; dr < 2; ++dr) {
                for (unsigned dc = 0; dc < 2; ++dc) {
                    float v =
                        input[(2 * r + dr) * 8 + 2 * c + dc];
                    expected = std::max(expected,
                                        std::max(v, 0.0f));
                }
            }
            float got =
                backdoor.readF32(out + 4ull * (r * 4 + c));
            EXPECT_FLOAT_EQ(got, expected)
                << "r=" << r << " c=" << c;
        }
    }
}

TEST(FullSystem, StreamingProducerConsumerSelfSynchronizes)
{
    // relu(stream) -> maxpool over a stream buffer, no host
    // synchronization between the two — the Fig. 16(c) mechanism.
    using namespace salam::kernels;
    auto relu = makeRelu(128, false, true); // array in, stream out
    auto pool = makeMaxPool(16, 8, true, false); // stream in

    Module mod("m");
    IRBuilder b(mod);
    Function *relu_fn = relu->build(b);
    Function *pool_fn = pool->build(b);

    Simulation sim;
    SalamSystem sys(sim);
    auto &cluster = sys.addCluster("c0", periodFromMhz(100));

    ScratchpadConfig sproto;
    sproto.readPorts = 4;
    sproto.writePorts = 4;
    auto &shared = cluster.addSpm("shared", 64 * 1024, sproto, true);
    auto &stream = cluster.addStreamBuffer("fifo", 64);

    std::uint64_t base = shared.config().range.start;
    std::uint64_t in = base, rowbuf = base + 0x800,
                  out = base + 0xC00;

    auto &acc_relu = cluster.addAccelerator(
        "relu", *relu_fn, {},
        {{"mem", {shared.config().range}, true},
         {"stream_out", {stream.config().writeRange}, false}});
    bindPorts(acc_relu.comm->dataPort(1), stream.writePort());

    auto &acc_pool = cluster.addAccelerator(
        "pool", *pool_fn, {},
        {{"stream_in", {stream.config().readRange}, false},
         {"mem", {shared.config().range}, true}});
    bindPorts(acc_pool.comm->dataPort(0), stream.readPort());

    ScratchpadBackdoor backdoor(shared);
    Lcg rng(11);
    std::vector<float> input(128);
    for (unsigned i = 0; i < 128; ++i) {
        input[i] = static_cast<float>(rng.nextDouble()) - 0.5f;
        backdoor.writeF32(in + 4ull * i, input[i]);
    }

    DriverCpu &host = sys.host();
    // Start BOTH at once; the FIFO handshake does the rest.
    driver::pushAcceleratorStart(
        host, acc_relu,
        {in, stream.config().writeRange.start});
    driver::pushAcceleratorStart(
        host, acc_pool,
        {stream.config().readRange.start, rowbuf, out});
    host.push(HostOp::waitIrq(acc_pool.irqId));
    host.push(HostOp::waitIrq(acc_relu.irqId));
    sys.run();

    // relu then 2x2 maxpool over the 16x8 image.
    for (unsigned r = 0; r < 4; ++r) {
        for (unsigned c = 0; c < 8; ++c) {
            float expected = 0.0f;
            for (unsigned dr = 0; dr < 2; ++dr) {
                for (unsigned dc = 0; dc < 2; ++dc) {
                    float v = std::max(
                        input[(2 * r + dr) * 16 + 2 * c + dc],
                        0.0f);
                    expected = std::max(expected, v);
                }
            }
            float got =
                backdoor.readF32(out + 4ull * (r * 8 + c));
            EXPECT_FLOAT_EQ(got, expected)
                << "r=" << r << " c=" << c;
        }
    }
    EXPECT_EQ(stream.bytesStreamed(), 128u * 4u);
}

/** @file Unit tests for the interrupt controller and host driver. */

#include <gtest/gtest.h>

#include "sys/system.hh"

using namespace salam;
using namespace salam::sys;

TEST(Gic, LatchesUntilAcknowledged)
{
    Simulation sim;
    auto &gic = sim.create<Gic>("gic");
    EXPECT_FALSE(gic.isPending(5));
    gic.raise(5);
    EXPECT_TRUE(gic.isPending(5));
    EXPECT_FALSE(gic.isPending(6));
    gic.acknowledge(5);
    EXPECT_FALSE(gic.isPending(5));
    EXPECT_EQ(gic.interruptsRaised(), 1u);
}

TEST(Gic, SinkNotifiedOnRaise)
{
    Simulation sim;
    auto &gic = sim.create<Gic>("gic");
    unsigned seen = 0;
    gic.setSink([&](unsigned id) { seen = id; });
    gic.lineCallback(42)();
    EXPECT_EQ(seen, 42u);
    EXPECT_TRUE(gic.isPending(42));
}

TEST(DriverCpu, IrqRaisedBeforeWaitStillCompletes)
{
    // The device may finish before the host reaches waitIrq; the
    // latched line must let the wait complete immediately.
    Simulation sim;
    SalamSystem sys(sim);
    unsigned irq = sys.allocateIrq();
    // Raise the line early in simulation, before the host waits.
    sim.eventQueue().schedule(100, [&] { sys.gic().raise(irq); });
    sys.host().push(HostOp::delay(10'000));
    sys.host().push(HostOp::waitIrq(irq));
    sys.host().push(HostOp::mark("done"));
    sys.run();
    EXPECT_TRUE(sys.host().finished());
    EXPECT_GT(sys.host().markAt("done"), 0u);
}

TEST(DriverCpu, MarksRecordOrderedTimestamps)
{
    Simulation sim;
    SalamSystem sys(sim);
    sys.host().push(HostOp::mark("first"));
    sys.host().push(HostOp::delay(123));
    sys.host().push(HostOp::mark("second"));
    sys.run();
    EXPECT_LT(sys.host().markAt("first"),
              sys.host().markAt("second"));
    EXPECT_EQ(sys.host().markAt("missing"), 0u);
}

TEST(DriverCpu, CallbackOpRunsHostCode)
{
    Simulation sim;
    SalamSystem sys(sim);
    bool ran = false;
    sys.host().push(HostOp::call([&] { ran = true; }));
    sys.run();
    EXPECT_TRUE(ran);
}

TEST(DriverCpu, MmioCountsAccesses)
{
    Simulation sim;
    SalamSystem sys(sim);
    // Write and read DRAM over the bus like device registers.
    std::uint64_t addr = SystemAddressMap::dramBase + 0x100;
    sys.host().push(HostOp::writeReg(addr, 0x1234));
    sys.host().push(HostOp::readReg(addr));
    sys.run();
    EXPECT_EQ(sys.host().mmioOps(), 2u);
    std::uint64_t value = 0;
    sys.dram().backdoorRead(addr, &value, 8);
    EXPECT_EQ(value, 0x1234u);
}

/**
 * @file
 * Directed robustness tests: the host CPU's port-retry path, MMR
 * decode hardening, and the hang paths (queue drain and watchdog)
 * with their diagnostic state dumps.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <vector>

#include "inject/fault_injector.hh"
#include "kernels/machsuite.hh"
#include "sys/system.hh"
#include "../ir/test_helpers.hh"
#include "support/minijson.hh"

using namespace salam;
using namespace salam::ir;
using namespace salam::mem;
using namespace salam::sys;
using salam::testsupport::parseJson;

namespace
{

/**
 * A device that refuses the first N timing requests before accepting,
 * exercising the requester's recvReqRetry path the way a congested
 * interconnect does.
 */
class RefusingDevice : public ResponsePort
{
  public:
    RefusingDevice(Simulation &sim, unsigned refusals)
        : ResponsePort("stub"), sim(sim), refusalsLeft(refusals)
    {
    }

    unsigned refused = 0;
    unsigned serviced = 0;

    bool
    recvTimingReq(PacketPtr pkt) override
    {
        if (refusalsLeft > 0) {
            --refusalsLeft;
            ++refused;
            sim.eventQueue().schedule(
                sim.eventQueue().curTick() + 40,
                [this] { sendReqRetry(); }, "stub.retry");
            return false;
        }
        ++serviced;
        pkt->makeResponse();
        sim.eventQueue().schedule(
            sim.eventQueue().curTick() + 10,
            [this, pkt] { sendTimingResp(pkt); }, "stub.resp");
        return true;
    }

    void recvRespRetry() override {}

  private:
    Simulation &sim;
    unsigned refusalsLeft;
};

std::string
slurp(const std::string &path)
{
    std::ifstream in(path);
    std::stringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

} // namespace

TEST(Robustness, DriverCpuResendsRefusedRequests)
{
    // Regression: a refused MMIO request must be stashed and resent
    // on recvReqRetry, not silently dropped (which wedged the host
    // program forever).
    Simulation sim;
    auto &host = sim.create<DriverCpu>("host", 10);
    RefusingDevice stub(sim, 3);
    bindPorts(host.port(), stub);

    host.push(HostOp::writeReg(0x100, 1));
    host.push(HostOp::readReg(0x100));
    sim.run();

    EXPECT_TRUE(host.finished());
    EXPECT_EQ(host.opsCompleted(), 2u);
    EXPECT_EQ(stub.refused, 3u);
    EXPECT_EQ(stub.serviced, 2u);
}

TEST(Robustness, UndecodableMmrAccessGetsErrorResponseAndRunSurvives)
{
    // A misaligned MMR read is a driver bug, not a simulator bug:
    // the comm interface answers with an error response and the run
    // completes normally.
    Module mod("m");
    IRBuilder b(mod);
    Function *fn = salam::test::buildSumSquares(b, 8);

    Simulation sim;
    SalamSystem sys(sim);
    auto &cluster = sys.addCluster("c0", periodFromMhz(100));
    auto &accel = cluster.addAccelerator("acc", *fn, {}, {});

    DriverCpu &host = sys.host();
    host.push(HostOp::readReg(accel.ctrlAddr() + 4)); // misaligned
    driver::pushAcceleratorStart(host, accel, {});
    host.push(HostOp::waitIrq(accel.irqId));
    sys.run();

    EXPECT_EQ(accel.comm->mmrDecodeErrorCount(), 1u);
    EXPECT_TRUE(accel.cu->finished());
    EXPECT_TRUE(host.finished());
}

TEST(Robustness, QueueDrainWithUnfinishedHostIsFatalAndNamesWaiter)
{
    const std::string dump = "robustness_drain_dump.json";
    std::remove(dump.c_str());
    EXPECT_EXIT(
        {
            Simulation sim;
            SystemConfig cfg;
            cfg.stateDumpPath = dump;
            SalamSystem sys(sim, cfg);
            sys.host().push(HostOp::waitIrq(sys.allocateIrq()));
            sys.run();
        },
        ::testing::ExitedWithCode(1),
        "event queue drained.*host program unfinished.*host.*"
        "waiting for interrupt");

    // The child wrote the dump before dying; it must name the host
    // as the stuck component.
    auto doc = parseJson(slurp(dump));
    EXPECT_EQ(doc.at("kind").string, "salam_state_dump");
    ASSERT_GE(doc.at("suspects").array.size(), 1u);
    EXPECT_EQ(doc.at("suspects").array[0].at("object").string,
              "host");
    EXPECT_NE(doc.at("suspects").array[0].at("reason").string.find(
                  "waiting for interrupt"),
              std::string::npos);
    std::remove(dump.c_str());
}

TEST(Robustness, WatchdogDumpNamesTheActuallyStuckComputeUnit)
{
    // Acceptance pin: drop a scratchpad response mid-kernel so the
    // engine livelocks (events still firing, nothing retiring). The
    // watchdog must trip, and the state dump must finger the compute
    // unit with in-flight accesses — not some innocent bystander.
    const std::string dump = "robustness_watchdog_dump.json";
    std::remove(dump.c_str());
    EXPECT_EXIT(
        {
            Simulation sim;
            inject::FaultPlan plan;
            ASSERT_EQ(plan.parse("drop_response@spm:nth=20"), "");
            inject::FaultInjector injector(plan);
            injector.attach(sim);

            SystemConfig cfg;
            cfg.watchdogWindowTicks = 100000;
            cfg.stateDumpPath = dump;
            SalamSystem sys(sim, cfg);
            auto &cluster = sys.addCluster("c0", periodFromMhz(100));

            ScratchpadConfig sproto;
            sproto.readPorts = 4;
            sproto.writePorts = 4;
            auto &spm = cluster.addSpm("spm", 16 * 1024, sproto);

            using namespace salam::kernels;
            Module mod("m");
            IRBuilder b(mod);
            Function *fn = makeRelu(64)->build(b);
            auto &accel = cluster.addAccelerator(
                "relu", *fn, {},
                {{"spm", {spm.config().range}, false}});
            bindPorts(accel.comm->dataPort(0), spm.port(0));

            std::uint64_t in = spm.config().range.start;
            std::uint64_t out = in + 64 * 4;
            for (unsigned i = 0; i < 64; ++i) {
                float v = static_cast<float>(i) - 32.0f;
                spm.backdoorWrite(in + 4ull * i, &v, 4);
            }
            DriverCpu &host = sys.host();
            driver::pushAcceleratorStart(host, accel, {in, out});
            host.push(HostOp::waitIrq(accel.irqId));
            sys.run();
        },
        ::testing::ExitedWithCode(1),
        "no forward progress.*watchdog.*stuck:.*relu");

    auto doc = parseJson(slurp(dump));
    bool names_cu = false, names_host = false;
    for (const auto &suspect : doc.at("suspects").array) {
        const std::string &who = suspect.at("object").string;
        const std::string &why = suspect.at("reason").string;
        if (who == "c0.relu") {
            names_cu = true;
            EXPECT_NE(why.find("in flight"), std::string::npos)
                << why;
        }
        if (who == "host") {
            names_host = true;
            EXPECT_NE(why.find("waiting for interrupt"),
                      std::string::npos)
                << why;
        }
    }
    EXPECT_TRUE(names_cu);
    EXPECT_TRUE(names_host);

    // The dump also carries the injection plan and firing log.
    ASSERT_TRUE(doc.has("injection"));
    ASSERT_GE(doc.at("injection").at("fired").array.size(), 1u);
    EXPECT_EQ(doc.at("injection")
                  .at("fired")
                  .array[0]
                  .at("kind")
                  .string,
              "drop_response");
    std::remove(dump.c_str());
}

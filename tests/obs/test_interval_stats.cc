/**
 * @file
 * Interval time-series statistics tests: dump/reset semantics of
 * the registry (including Formula stats), interval rows summing to
 * whole-run totals, termination without a hang, and per-interval
 * power derivation.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "obs/interval_stats.hh"
#include "sim/event_queue.hh"
#include "sim/statistics.hh"
#include "support/minijson.hh"

using namespace salam;
using salam::obs::IntervalStats;
using salam::testsupport::JsonValue;
using salam::testsupport::parseJson;

namespace
{

/**
 * Regression for StatRegistry::resetAll() with Formula inputs:
 * resettable kinds go back to zero, while formulas recompute from
 * their live inputs — dump, reset, advance, re-dump.
 */
TEST(IntervalStats, ResetAllClearsResettablesButNotFormulas)
{
    StatRegistry reg;
    Stat &count = reg.add("t.count", "a scalar");
    VectorStat &vec =
        reg.addVector("t.vec", "a vector", {"a", "b"});
    Histogram &hist = reg.addHistogram("t.hist", "a histogram",
                                       0.0, 10.0, 5);
    double live_input = 0.0;
    reg.addFormula("t.ratio", "live formula",
                   [&live_input] { return live_input / 2.0; });

    count += 5.0;
    vec.add(0, 3.0);
    hist.sample(4.0);
    live_input = 8.0;

    JsonValue before = parseJson(reg.dumpJsonString());
    EXPECT_EQ(before.at("t.count").at("value").number, 5.0);
    EXPECT_EQ(before.at("t.vec").at("value").number, 3.0);
    EXPECT_EQ(before.at("t.hist").at("count").number, 1.0);
    EXPECT_EQ(before.at("t.ratio").at("value").number, 4.0);

    reg.resetAll();

    // Resettables are zero; the formula still reads its live input.
    EXPECT_EQ(count.value(), 0.0);
    EXPECT_EQ(vec.value(), 0.0);
    EXPECT_EQ(hist.count(), 0u);
    EXPECT_EQ(reg.find("t.ratio")->value(), 4.0);

    // Advance and re-dump: only post-reset deltas in resettables.
    count += 2.0;
    vec.add(1, 7.0);
    hist.sample(9.0);
    hist.sample(1.0);
    live_input = 20.0;

    JsonValue after = parseJson(reg.dumpJsonString());
    EXPECT_EQ(after.at("t.count").at("value").number, 2.0);
    EXPECT_EQ(after.at("t.vec").at("lanes").at("a").number, 0.0);
    EXPECT_EQ(after.at("t.vec").at("lanes").at("b").number, 7.0);
    EXPECT_EQ(after.at("t.hist").at("count").number, 2.0);
    EXPECT_EQ(after.at("t.ratio").at("value").number, 10.0);
}

/**
 * Drives a counter from scheduled events and checks that the
 * per-interval deltas sum back to the whole-run total.
 */
TEST(IntervalStats, RowDeltasSumToWholeRunTotal)
{
    EventQueue queue;
    StatRegistry reg;
    Stat &work = reg.add("w.done", "units of work");

    // 1 unit at each of ticks 10, 20, ..., 250.
    constexpr unsigned n_events = 25;
    for (unsigned i = 1; i <= n_events; ++i)
        queue.schedule(i * 10, [&work] { ++work; }, "work");

    IntervalStats::Config cfg;
    cfg.intervalTicks = 60; // boundaries at 60, 120, 180, 240
    IntervalStats intervals(queue, reg, cfg);
    intervals.start();

    queue.run();
    intervals.finalize();

    // Partial tail (ticks 241..250) captured by finalize().
    ASSERT_GE(intervals.rows().size(), 2u);
    double sum = 0.0;
    std::uint64_t expect_index = 0;
    Tick prev_end = 0;
    for (const IntervalStats::Row &row : intervals.rows()) {
        EXPECT_EQ(row.index, expect_index++);
        EXPECT_EQ(row.startTick, prev_end);
        EXPECT_GT(row.endTick, row.startTick);
        prev_end = row.endTick;
        JsonValue doc = parseJson(row.statsJson);
        sum += doc.at("w.done").at("value").number;
    }
    EXPECT_EQ(sum, static_cast<double>(n_events));
}

/**
 * Without an active() predicate the series must terminate on its
 * own once the boundary event is the only thing left in the queue —
 * EventQueue::run() drains until empty, so this is the hang test.
 */
TEST(IntervalStats, TerminatesWhenQueueOtherwiseEmpty)
{
    EventQueue queue;
    StatRegistry reg;
    queue.schedule(35, [] {}, "payload");

    IntervalStats::Config cfg;
    cfg.intervalTicks = 10;
    IntervalStats intervals(queue, reg, cfg);
    intervals.start();

    Tick last = queue.run(100000);
    EXPECT_LE(last, 50u); // did not free-run to the limit
    intervals.finalize();
    EXPECT_FALSE(intervals.rows().empty());
}

/** The active() predicate bounds the series. */
TEST(IntervalStats, ActivePredicateStopsTheSeries)
{
    EventQueue queue;
    StatRegistry reg;
    bool running = true;
    queue.schedule(95, [&running] { running = false; }, "stop");

    IntervalStats::Config cfg;
    cfg.intervalTicks = 20;
    cfg.active = [&running] { return running; };
    IntervalStats intervals(queue, reg, cfg);
    intervals.start();

    queue.run();
    intervals.finalize();

    // Boundaries at 20/40/60/80 fire; at 100 the predicate is
    // false, so only the finalize() tail follows.
    ASSERT_EQ(intervals.rows().size(), 5u);
    EXPECT_EQ(intervals.rows().back().endTick, 100u);
}

/** Per-interval power: ΔpJ over Δns, from the energy probe. */
TEST(IntervalStats, EnergyProbeYieldsPerIntervalPower)
{
    EventQueue queue;
    StatRegistry reg;
    // Keep the queue busy through two full intervals.
    for (Tick t = 1; t <= 4000; t += 100)
        queue.schedule(t, [] {}, "busy");

    double energy_pj = 0.0;
    IntervalStats::Config cfg;
    cfg.intervalTicks = 2000; // 2 ns at 1 ps per tick
    IntervalStats intervals(queue, reg, cfg);
    intervals.setEnergyProbe([&energy_pj] { return energy_pj; });

    // 6 pJ in the first interval, then nothing.
    queue.schedule(500, [&energy_pj] { energy_pj = 6.0; }, "e");
    intervals.start();

    queue.run();
    intervals.finalize();

    ASSERT_GE(intervals.rows().size(), 2u);
    // 6 pJ / 2 ns = 3 mW; second interval is idle.
    EXPECT_DOUBLE_EQ(intervals.rows()[0].dynamicPowerMw, 3.0);
    EXPECT_DOUBLE_EQ(intervals.rows()[1].dynamicPowerMw, 0.0);
}

/** JSONL serialization: one valid JSON object per row line. */
TEST(IntervalStats, WritesValidJsonl)
{
    EventQueue queue;
    StatRegistry reg;
    Stat &s = reg.add("x.y", "scalar");
    for (Tick t = 5; t <= 50; t += 5)
        queue.schedule(t, [&s] { ++s; }, "tick");

    IntervalStats::Config cfg;
    cfg.intervalTicks = 25;
    IntervalStats intervals(queue, reg, cfg);
    intervals.start();
    queue.run();
    intervals.finalize();

    std::ostringstream os;
    intervals.writeJsonl(os);
    std::istringstream lines(os.str());
    std::string line;
    unsigned n = 0;
    while (std::getline(lines, line)) {
        JsonValue doc = parseJson(line);
        EXPECT_EQ(doc.at("index").number, static_cast<double>(n));
        EXPECT_TRUE(doc.at("stats").isObject());
        ++n;
    }
    EXPECT_EQ(n, intervals.rows().size());
}

} // namespace

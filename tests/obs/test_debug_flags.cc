/** Tests for the debug-flag registry and trace emission. */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "obs/debug_flags.hh"
#include "sim/logging.hh"

using namespace salam;
using namespace salam::obs;

namespace
{

/** Captures every emitted line; restores registry state on exit. */
class FlagTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        DebugFlagRegistry::instance().disableAll();
        DebugFlagRegistry::instance().setSink(
            [this](const std::string &line) {
                lines.push_back(line);
            });
    }

    void
    TearDown() override
    {
        DebugFlagRegistry::instance().setSink(nullptr);
        DebugFlagRegistry::instance().disableAll();
    }

    std::vector<std::string> lines;
};

TEST_F(FlagTest, FlagsStartDisabledAndAreRegistered)
{
    EXPECT_FALSE(flag::Cache.enabled());
    EXPECT_FALSE(flag::RuntimeEngine.enabled());
    auto *found = DebugFlagRegistry::instance().find("Cache");
    ASSERT_NE(found, nullptr);
    EXPECT_EQ(found, &flag::Cache);
    EXPECT_EQ(DebugFlagRegistry::instance().find("NoSuchFlag"),
              nullptr);
}

TEST_F(FlagTest, SetEnabledByNameAndAll)
{
    EXPECT_TRUE(
        DebugFlagRegistry::instance().setEnabled("DMA", true));
    EXPECT_TRUE(flag::DMA.enabled());
    EXPECT_FALSE(flag::Cache.enabled());

    EXPECT_TRUE(
        DebugFlagRegistry::instance().setEnabled("All", true));
    EXPECT_TRUE(flag::Cache.enabled());
    EXPECT_TRUE(flag::Crossbar.enabled());

    EXPECT_FALSE(
        DebugFlagRegistry::instance().setEnabled("Bogus", true));
}

TEST_F(FlagTest, ApplySpecWithNegation)
{
    EXPECT_TRUE(
        DebugFlagRegistry::instance().applySpec("All,-Event"));
    EXPECT_TRUE(flag::Cache.enabled());
    EXPECT_FALSE(flag::Event.enabled());

    DebugFlagRegistry::instance().disableAll();
    EXPECT_TRUE(
        DebugFlagRegistry::instance().applySpec("Cache,Scratchpad"));
    EXPECT_TRUE(flag::Cache.enabled());
    EXPECT_TRUE(flag::Scratchpad.enabled());
    EXPECT_FALSE(flag::DMA.enabled());

    EXPECT_FALSE(DebugFlagRegistry::instance().applySpec("Nope"));
}

TEST_F(FlagTest, ApplySpecStrictAcceptsValidSpecs)
{
    EXPECT_EQ(DebugFlagRegistry::instance().applySpecStrict(
                  "Cache,Scratchpad"),
              "");
    EXPECT_TRUE(flag::Cache.enabled());
    EXPECT_TRUE(flag::Scratchpad.enabled());
    EXPECT_FALSE(flag::DMA.enabled());

    DebugFlagRegistry::instance().disableAll();
    EXPECT_EQ(DebugFlagRegistry::instance().applySpecStrict(
                  "All,-Event"),
              "");
    EXPECT_TRUE(flag::Cache.enabled());
    EXPECT_FALSE(flag::Event.enabled());
    EXPECT_EQ(DebugFlagRegistry::instance().applySpecStrict(
                  "Profile"),
              "");
    EXPECT_TRUE(flag::Profile.enabled());
}

TEST_F(FlagTest, ApplySpecStrictRejectsUnknownFlagsAtomically)
{
    // The valid "Cache" before the typo must NOT be applied.
    std::string error = DebugFlagRegistry::instance()
                            .applySpecStrict("Cache,Cach");
    ASSERT_FALSE(error.empty());
    EXPECT_FALSE(flag::Cache.enabled());

    // The diagnostic names the offender and lists the valid flags.
    EXPECT_NE(error.find("Cach"), std::string::npos);
    EXPECT_NE(error.find("valid flags"), std::string::npos);
    EXPECT_NE(error.find("All"), std::string::npos);
    EXPECT_NE(error.find("Cache"), std::string::npos);
    EXPECT_NE(error.find("RuntimeEngine"), std::string::npos);

    // Negated unknown names are rejected too.
    EXPECT_FALSE(DebugFlagRegistry::instance()
                     .applySpecStrict("All,-Bogus")
                     .empty());
    EXPECT_FALSE(flag::Cache.enabled());
}

TEST_F(FlagTest, DisabledFlagEmitsNothing)
{
    SALAM_TRACE_AT(Cache, 100, "l1", "hit addr=0x%x", 0x40u);
    EXPECT_TRUE(lines.empty());
}

TEST_F(FlagTest, EnabledFlagEmitsTickStampedObjectNamedLine)
{
    flag::Cache.enable();
    SALAM_TRACE_AT(Cache, 1234, "l1", "hit addr=0x%x", 0x40u);
    ASSERT_EQ(lines.size(), 1u);
    EXPECT_NE(lines[0].find("1234"), std::string::npos);
    EXPECT_NE(lines[0].find("l1:"), std::string::npos);
    EXPECT_NE(lines[0].find("hit addr=0x40"), std::string::npos);
}

TEST_F(FlagTest, FormatArgumentsNotEvaluatedWhenDisabled)
{
    int evaluations = 0;
    auto expensive = [&evaluations]() {
        ++evaluations;
        return 7;
    };
    SALAM_TRACE_AT(Cache, 0, "l1", "value=%d", expensive());
    EXPECT_EQ(evaluations, 0);
    flag::Cache.enable();
    SALAM_TRACE_AT(Cache, 0, "l1", "value=%d", expensive());
    EXPECT_EQ(evaluations, 1);
}

TEST_F(FlagTest, InformRoutesThroughInformFlag)
{
    inform("quiet by default %d", 1);
    EXPECT_TRUE(lines.empty());

    flag::Inform.enable();
    inform("now visible %d", 2);
    ASSERT_EQ(lines.size(), 1u);
    EXPECT_NE(lines[0].find("info: now visible 2"),
              std::string::npos);
}

TEST_F(FlagTest, WarnIndependentOfInform)
{
    flag::Warn.enable();
    inform("suppressed");
    warn("emitted %s", "loudly");
    ASSERT_EQ(lines.size(), 1u);
    EXPECT_NE(lines[0].find("warn: emitted loudly"),
              std::string::npos);
}

TEST_F(FlagTest, LogControlVerboseTogglesBothFlags)
{
    LogControl::setVerbose(true);
    EXPECT_TRUE(flag::Inform.enabled());
    EXPECT_TRUE(flag::Warn.enabled());
    EXPECT_TRUE(LogControl::verbose());
    LogControl::setVerbose(false);
    EXPECT_FALSE(LogControl::verbose());
}

} // namespace

/**
 * @file
 * HostTelemetry: phase-timer nesting, TimedMutex counters, JSON
 * output, and per-context isolation.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <sstream>
#include <thread>

#include "obs/host_telemetry.hh"
#include "sim/sim_context.hh"
#include "support/minijson.hh"

using namespace salam;
using namespace salam::obs;
using salam::testsupport::JsonValue;
using salam::testsupport::parseJson;

namespace
{

/** Busy-wait so elapsed wall time is strictly positive. */
void
spinNanos(std::uint64_t ns)
{
    const std::uint64_t start = hostNowNs();
    while (hostNowNs() - start < ns) {
    }
}

TEST(TimedMutex, UncontendedLockCountsAcquisitionsOnly)
{
    TimedMutex m("ut_uncontended");
    for (int i = 0; i < 3; ++i) {
        std::lock_guard<TimedMutex> hold(m);
    }
    EXPECT_TRUE(m.try_lock());
    m.unlock();

    TimedMutex::Stats s = m.stats();
    EXPECT_EQ(s.name, "ut_uncontended");
    EXPECT_EQ(s.acquisitions, 4u);
    EXPECT_EQ(s.contended, 0u);
    EXPECT_EQ(s.waitNanos, 0u);
}

TEST(TimedMutex, ContendedLockCountsWaitTime)
{
    TimedMutex m("ut_contended");
    m.lock();
    std::thread waiter([&m] {
        m.lock();
        m.unlock();
    });
    // The contended counter increments *before* the blocking wait,
    // so spinning on it makes the handoff deterministic.
    while (m.stats().contended == 0)
        std::this_thread::yield();
    spinNanos(100'000);
    m.unlock();
    waiter.join();

    TimedMutex::Stats s = m.stats();
    EXPECT_EQ(s.acquisitions, 2u);
    EXPECT_EQ(s.contended, 1u);
    EXPECT_GT(s.waitNanos, 0u);
}

TEST(TimedMutex, RegistrySnapshotSeesLiveInstances)
{
    std::uint64_t wait_before = TimedMutex::totalWaitNanos();
    {
        TimedMutex m("ut_registry_probe");
        m.lock();
        m.unlock();
        bool found = false;
        for (const TimedMutex::Stats &s :
             TimedMutex::snapshotAll()) {
            if (s.name == "ut_registry_probe") {
                found = true;
                EXPECT_EQ(s.acquisitions, 1u);
            }
        }
        EXPECT_TRUE(found);
    }
    // Destroyed instances leave the registry.
    for (const TimedMutex::Stats &s : TimedMutex::snapshotAll())
        EXPECT_NE(s.name, "ut_registry_probe");
    EXPECT_GE(TimedMutex::totalWaitNanos(), wait_before);
}

TEST(HostTelemetry, NestedPhasesAttributeSelfTime)
{
    HostTelemetry tel;
    tel.beginPhase(HostPhase::Elaboration);
    spinNanos(200'000);
    tel.beginPhase(HostPhase::StatsEmit);
    spinNanos(200'000);
    tel.endPhase();
    tel.endPhase();

    const PhaseTotals &elab = tel.phase(HostPhase::Elaboration);
    const PhaseTotals &stats = tel.phase(HostPhase::StatsEmit);
    EXPECT_EQ(elab.count, 1u);
    EXPECT_EQ(stats.count, 1u);
    // The outer phase includes the inner; self time excludes it.
    EXPECT_GE(elab.totalNanos, stats.totalNanos);
    EXPECT_LT(elab.selfNanos, elab.totalNanos);
    EXPECT_EQ(stats.selfNanos, stats.totalNanos);
    EXPECT_EQ(tel.selfNanosTotal(),
              elab.selfNanos + stats.selfNanos);
}

TEST(HostTelemetry, BulkAttributionCountsAsChildTime)
{
    HostTelemetry tel;
    tel.beginPhase(HostPhase::Elaboration);
    spinNanos(10'000);
    tel.addPhaseTime(HostPhase::MemoryModel, 100, 3);
    tel.endPhase();

    const PhaseTotals &mm = tel.phase(HostPhase::MemoryModel);
    EXPECT_EQ(mm.count, 3u);
    EXPECT_EQ(mm.totalNanos, 100u);
    EXPECT_EQ(mm.selfNanos, 100u);
    const PhaseTotals &elab = tel.phase(HostPhase::Elaboration);
    // No self-time underflow: self <= total always.
    EXPECT_LE(elab.selfNanos, elab.totalNanos);
}

TEST(HostTelemetry, ScopedPhaseIsNoOpWithoutTelemetry)
{
    SimContext ctx;
    ScopedSimContext bind(ctx);
    ASSERT_EQ(SimContext::current().hostTelemetry(), nullptr);
    {
        ScopedHostPhase scope(HostPhase::Elaboration);
    }
    SUCCEED();
}

TEST(HostTelemetry, ScopedPhaseBindsToCurrentContextOnly)
{
    HostTelemetry mine;
    HostTelemetry other;
    SimContext ctx;
    ctx.setHostTelemetry(&mine);
    ScopedSimContext bind(ctx);
    {
        ScopedHostPhase scope(HostPhase::ReportIo);
        spinNanos(10'000);
    }
    EXPECT_EQ(mine.phase(HostPhase::ReportIo).count, 1u);
    EXPECT_GT(mine.phase(HostPhase::ReportIo).totalNanos, 0u);
    EXPECT_EQ(other.phase(HostPhase::ReportIo).count, 0u);
}

TEST(HostTelemetry, MergeFoldsPhasesAndAllocationCounters)
{
    HostTelemetry a;
    a.addPhaseTime(HostPhase::EngineSchedule, 100, 2);
    a.noteArena(10, 1);
    HostTelemetry b;
    b.addPhaseTime(HostPhase::EngineSchedule, 50, 1);
    b.addPhaseTime(HostPhase::EventLoop, 25, 5);
    b.noteArena(4, 7);

    HostTelemetry merged;
    merged.mergeFrom(a);
    merged.mergeFrom(b);
    EXPECT_EQ(merged.phase(HostPhase::EngineSchedule).count, 3u);
    EXPECT_EQ(merged.phase(HostPhase::EngineSchedule).totalNanos,
              150u);
    EXPECT_EQ(merged.phase(HostPhase::EventLoop).count, 5u);
    EXPECT_EQ(merged.arenaHits(), 14u);
    EXPECT_EQ(merged.arenaMisses(), 8u);
}

TEST(HostTelemetry, JsonOutputParsesAndNamesEveryPhase)
{
    HostTelemetry tel;
    tel.addPhaseTime(HostPhase::MemoryModel, 2'000'000'000ull, 4);
    tel.noteArena(3, 2);
    tel.samplePeakRss();

    std::ostringstream os;
    tel.writeJsonWithLocks(os);
    JsonValue doc = parseJson(os.str());
    ASSERT_TRUE(doc.isObject());
    EXPECT_EQ(doc.at("schema").string, "host_telemetry_v1");
    for (unsigned i = 0; i < numHostPhases; ++i) {
        const char *name =
            hostPhaseName(static_cast<HostPhase>(i));
        EXPECT_TRUE(doc.at("phases").at(name).isObject()) << name;
    }
    EXPECT_DOUBLE_EQ(
        doc.at("phases").at("memory_model").at("seconds").number,
        2.0);
    EXPECT_DOUBLE_EQ(
        doc.at("phases").at("memory_model").at("count").number,
        4.0);
    EXPECT_DOUBLE_EQ(doc.at("alloc").at("arena_hits").number, 3.0);
    EXPECT_DOUBLE_EQ(doc.at("alloc").at("arena_misses").number,
                     2.0);
#if defined(__linux__)
    EXPECT_GT(doc.at("alloc").at("peak_rss_kb").number, 0.0);
#endif
    EXPECT_TRUE(doc.at("locks").isArray());
}

} // namespace

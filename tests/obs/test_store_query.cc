/**
 * @file
 * Store query coverage: diff (field-level comparison of two stores),
 * regress (simulation-rate gate against a recorded baseline), and
 * top (hotspot ranking across profile records), all on synthetic
 * stores.
 */

#include <gtest/gtest.h>

#include <filesystem>
#include <string>

#include "obs/result_store.hh"
#include "obs/store_query.hh"

using namespace salam;
using namespace salam::obs;

namespace fs = std::filesystem;

namespace
{

class QueryTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        base = (fs::temp_directory_path() /
                ("salam_query_test_" +
                 std::string(::testing::UnitTest::GetInstance()
                                 ->current_test_info()
                                 ->name())))
                   .string();
        fs::remove_all(base);
    }

    void TearDown() override { fs::remove_all(base); }

    std::string
    makeStore(const std::string &name,
              const std::vector<StoreRecord> &records)
    {
        std::string dir = base + "/" + name;
        auto store = ResultStore::open(dir);
        EXPECT_NE(store, nullptr);
        for (StoreRecord rec : records)
            store->append(std::move(rec));
        EXPECT_TRUE(store->flush());
        return dir;
    }

    std::string base;
};

StoreRecord
runRecord(const std::string &kernel, long point, double cycles,
          double stalls, double sim_seconds = 0.5)
{
    StoreRecord rec;
    rec.kind = "run";
    rec.bench = "unit";
    rec.kernel = kernel;
    rec.point = point;
    rec.json = "{\"cycles\":" + std::to_string(cycles) +
               ",\"stall_cycles\":" + std::to_string(stalls) +
               ",\"sim_seconds\":" + std::to_string(sim_seconds) +
               ",\"clock_period_ticks\":1000}";
    return rec;
}

StoreRecord
profileRecord(const std::string &kernel, const std::string &label,
              double cycles, double instances)
{
    StoreRecord rec;
    rec.kind = "profile";
    rec.bench = "unit";
    rec.kernel = kernel;
    rec.json = "{\"by_instruction\":[{\"label\":\"" + label +
               "\",\"cycles\":" + std::to_string(cycles) +
               ",\"instances\":" + std::to_string(instances) + "}]}";
    return rec;
}

} // namespace

TEST_F(QueryTest, DiffPairsByKernelAndPoint)
{
    // Store B's records are written in a different order than A's —
    // pairing must go by (kernel, point), not file position.
    std::string a = makeStore(
        "a", {runRecord("gemm", 0, 1000, 50),
              runRecord("gemm", 1, 2000, 80),
              runRecord("fft", 0, 500, 5)});
    std::string b = makeStore(
        "b", {runRecord("fft", 0, 500, 5),
              runRecord("gemm", 1, 2400, 90),
              runRecord("gemm", 0, 1000, 50)});

    StoreReader ra = StoreReader::load(a);
    StoreReader rb = StoreReader::load(b);
    ASSERT_TRUE(ra.ok());
    ASSERT_TRUE(rb.ok());

    DiffReport report = diffStores(ra, rb, RecordFilter{});
    EXPECT_EQ(report.pairedRows, 3u);
    EXPECT_EQ(report.changedRows, 1u);
    EXPECT_EQ(report.onlyInA, 0u);
    EXPECT_EQ(report.onlyInB, 0u);

    // Ordered fft:0, gemm:0, gemm:1.
    ASSERT_EQ(report.rows.size(), 3u);
    EXPECT_EQ(report.rows[0].kernel, "fft");
    EXPECT_FALSE(report.rows[0].changed);
    EXPECT_FALSE(report.rows[1].changed);
    const DiffRow &changed = report.rows[2];
    EXPECT_EQ(changed.kernel, "gemm");
    EXPECT_EQ(changed.point, 1);
    EXPECT_TRUE(changed.changed);

    bool saw_cycles = false, saw_stalls = false;
    for (const DiffField &field : changed.fields) {
        if (field.key == "cycles") {
            saw_cycles = true;
            EXPECT_DOUBLE_EQ(field.delta, 400.0);
            EXPECT_NEAR(field.pct, 20.0, 1e-9);
        }
        if (field.key == "stall_cycles") {
            saw_stalls = true;
            EXPECT_DOUBLE_EQ(field.delta, 10.0);
        }
    }
    EXPECT_TRUE(saw_cycles);
    EXPECT_TRUE(saw_stalls);
}

TEST_F(QueryTest, DiffCountsUnpairedRows)
{
    std::string a =
        makeStore("a", {runRecord("gemm", 0, 1000, 50),
                        runRecord("gemm", 1, 2000, 80)});
    std::string b = makeStore("b", {runRecord("gemm", 0, 1000, 50)});

    StoreReader ra = StoreReader::load(a);
    StoreReader rb = StoreReader::load(b);
    DiffReport report = diffStores(ra, rb, RecordFilter{});
    EXPECT_EQ(report.pairedRows, 1u);
    EXPECT_EQ(report.onlyInA, 1u);
    EXPECT_EQ(report.onlyInB, 0u);
}

TEST_F(QueryTest, DiffWallTimeJitterIsNotAChange)
{
    // Only sim_seconds differs — reported, but not a "change".
    std::string a =
        makeStore("a", {runRecord("gemm", 0, 1000, 50, 0.5)});
    std::string b =
        makeStore("b", {runRecord("gemm", 0, 1000, 50, 0.9)});

    StoreReader ra = StoreReader::load(a);
    StoreReader rb = StoreReader::load(b);
    DiffReport report = diffStores(ra, rb, RecordFilter{});
    ASSERT_EQ(report.rows.size(), 1u);
    EXPECT_FALSE(report.rows[0].changed);
    EXPECT_EQ(report.changedRows, 0u);
    bool saw_seconds = false;
    for (const DiffField &field : report.rows[0].fields) {
        if (field.key == "sim_seconds") {
            saw_seconds = true;
            EXPECT_NE(field.delta, 0.0);
        }
    }
    EXPECT_TRUE(saw_seconds);
}

TEST_F(QueryTest, DiffSingleFieldRestriction)
{
    std::string a =
        makeStore("a", {runRecord("gemm", 0, 1000, 50)});
    std::string b =
        makeStore("b", {runRecord("gemm", 0, 1200, 99)});

    StoreReader ra = StoreReader::load(a);
    StoreReader rb = StoreReader::load(b);
    DiffReport report =
        diffStores(ra, rb, RecordFilter{}, "cycles");
    ASSERT_EQ(report.rows.size(), 1u);
    ASSERT_EQ(report.rows[0].fields.size(), 1u);
    EXPECT_EQ(report.rows[0].fields[0].key, "cycles");
}

TEST_F(QueryTest, RegressPassAndFail)
{
    // cycles * clock / sim_seconds = 1000 * 1000 / 0.5 = 2e6.
    std::string dir =
        makeStore("s", {runRecord("gemm", 0, 1000, 50, 0.5)});
    StoreReader reader = StoreReader::load(dir);
    ASSERT_TRUE(reader.ok());

    auto baseline = [](double rate) {
        return std::string("{\"clock_period_ticks\":1000,"
                           "\"kernels\":[{\"kernel\":\"gemm\","
                           "\"ticks_per_sec\":") +
               std::to_string(rate) + "}]}";
    };

    // Store matches the baseline exactly: pass.
    RegressReport pass =
        regressAgainstBaseline(reader, baseline(2e6), 20.0);
    EXPECT_TRUE(pass.error.empty()) << pass.error;
    ASSERT_EQ(pass.rows.size(), 1u);
    EXPECT_TRUE(pass.pass);
    EXPECT_NEAR(pass.rows[0].ratio, 1.0, 1e-9);

    // Baseline 2x faster than the store: 0.5 ratio, beyond 20%.
    RegressReport fail =
        regressAgainstBaseline(reader, baseline(4e6), 20.0);
    ASSERT_EQ(fail.rows.size(), 1u);
    EXPECT_FALSE(fail.pass);
    EXPECT_FALSE(fail.rows[0].pass);
    EXPECT_NEAR(fail.rows[0].ratio, 0.5, 1e-9);

    // Same drop but within a 60% budget: pass.
    RegressReport loose =
        regressAgainstBaseline(reader, baseline(4e6), 60.0);
    EXPECT_TRUE(loose.pass);
}

TEST_F(QueryTest, RegressPicksBestRecordAndSkipsFailedRuns)
{
    // A slow oversubscribed point (4e5) and a fast one (2e6): the
    // gate compares the best. The "fault" record is never counted.
    StoreRecord bad = runRecord("gemm", 2, 5000, 0, 0.1);
    bad.outcome = "fault";
    std::string dir = makeStore(
        "s", {runRecord("gemm", 0, 1000, 50, 2.5),
              runRecord("gemm", 1, 1000, 50, 0.5), bad});
    StoreReader reader = StoreReader::load(dir);

    RegressReport report = regressAgainstBaseline(
        reader,
        "{\"clock_period_ticks\":1000,\"kernels\":[{\"kernel\":"
        "\"gemm\",\"ticks_per_sec\":2e6}]}",
        20.0);
    ASSERT_EQ(report.rows.size(), 1u);
    EXPECT_NEAR(report.rows[0].currentTicksPerSec, 2e6, 1.0);
    EXPECT_TRUE(report.pass);
}

TEST_F(QueryTest, RegressMissingKernelAndBadBaseline)
{
    std::string dir =
        makeStore("s", {runRecord("gemm", 0, 1000, 50)});
    StoreReader reader = StoreReader::load(dir);

    // Baseline names a kernel the store has no data for.
    RegressReport missing = regressAgainstBaseline(
        reader,
        "{\"clock_period_ticks\":1000,\"kernels\":["
        "{\"kernel\":\"gemm\",\"ticks_per_sec\":2e6},"
        "{\"kernel\":\"bfs\",\"ticks_per_sec\":1e6}]}",
        20.0);
    ASSERT_EQ(missing.missingKernels.size(), 1u);
    EXPECT_EQ(missing.missingKernels[0], "bfs");
    EXPECT_EQ(missing.rows.size(), 1u);

    // Unparseable baseline: error, no crash.
    RegressReport bad =
        regressAgainstBaseline(reader, "not json", 20.0);
    EXPECT_FALSE(bad.error.empty());
    EXPECT_FALSE(bad.pass);

    // No overlap at all: error.
    RegressReport none = regressAgainstBaseline(
        reader,
        "{\"clock_period_ticks\":1000,\"kernels\":[{\"kernel\":"
        "\"bfs\",\"ticks_per_sec\":1e6}]}",
        20.0);
    EXPECT_FALSE(none.pass);
    EXPECT_FALSE(none.error.empty());
}

TEST_F(QueryTest, TopMergesAcrossProfileRecords)
{
    std::string dir = makeStore(
        "s", {profileRecord("gemm", "gemm:j:%j.iv (phi)", 600, 50),
              profileRecord("gemm", "gemm:j:%j.iv (phi)", 400, 30),
              profileRecord("gemm", "gemm:i:% (br)", 100, 10),
              // Run records must not contaminate the ranking.
              runRecord("gemm", 0, 1000, 50)});
    StoreReader reader = StoreReader::load(dir);
    ASSERT_TRUE(reader.ok());

    std::vector<TopEntry> top = topHotspots(reader);
    ASSERT_EQ(top.size(), 2u);
    EXPECT_EQ(top[0].label, "gemm:j:%j.iv (phi)");
    EXPECT_EQ(top[0].cycles, 1000u);
    EXPECT_EQ(top[0].instances, 80u);
    EXPECT_EQ(top[0].runs, 2u);
    EXPECT_EQ(top[1].label, "gemm:i:% (br)");

    EXPECT_EQ(topHotspots(reader, 1).size(), 1u);
}

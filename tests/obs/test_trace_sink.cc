/** Tests for TraceSink and its Chrome trace_event JSON export. */

#include <gtest/gtest.h>

#include <sstream>

#include "obs/run_report.hh"
#include "obs/trace_sink.hh"
#include "support/minijson.hh"

using namespace salam::obs;
using salam::testsupport::JsonValue;
using salam::testsupport::parseJson;

namespace
{

TEST(TraceSink, EmptySinkProducesValidDocument)
{
    TraceSink sink;
    std::ostringstream os;
    sink.writeChromeTrace(os);
    JsonValue doc = parseJson(os.str());
    ASSERT_TRUE(doc.isObject());
    EXPECT_TRUE(doc.at("traceEvents").isArray());
    EXPECT_TRUE(doc.at("traceEvents").array.empty());
}

TEST(TraceSink, RecordsRenderWithCorrectPhases)
{
    TraceSink sink;
    sink.recordSlice(1'000'000, 2'000'000, "acc", "compute", "fmul",
                     {{"lat", 4.0}});
    sink.recordInstant(3'000'000, "acc", "engine", "import loop");
    sink.recordCounter(5'000'000, "spm", "queue", {{"pending", 3.0}});

    std::ostringstream os;
    sink.writeChromeTrace(os);
    JsonValue doc = parseJson(os.str());
    const auto &events = doc.at("traceEvents").array;

    // Metadata thread_name records come first, one per object.
    std::size_t meta = 0;
    for (const auto &ev : events) {
        if (ev.at("ph").string == "M")
            ++meta;
    }
    EXPECT_EQ(meta, 2u); // "acc" and "spm"

    bool saw_slice = false, saw_instant = false, saw_counter = false;
    for (const auto &ev : events) {
        const std::string &ph = ev.at("ph").string;
        if (ph == "X") {
            saw_slice = true;
            // 1e6 ps = 1 us.
            EXPECT_DOUBLE_EQ(ev.at("ts").number, 1.0);
            EXPECT_DOUBLE_EQ(ev.at("dur").number, 2.0);
            EXPECT_EQ(ev.at("name").string, "fmul");
            EXPECT_DOUBLE_EQ(ev.at("args").at("lat").number, 4.0);
        } else if (ph == "i") {
            saw_instant = true;
            EXPECT_EQ(ev.at("s").string, "t");
        } else if (ph == "C") {
            saw_counter = true;
            EXPECT_DOUBLE_EQ(ev.at("args").at("pending").number,
                             3.0);
        }
    }
    EXPECT_TRUE(saw_slice);
    EXPECT_TRUE(saw_instant);
    EXPECT_TRUE(saw_counter);
}

TEST(TraceSink, ObjectsMapToStableThreadIds)
{
    TraceSink sink;
    sink.recordInstant(0, "a", "x", "e1");
    sink.recordInstant(1, "b", "x", "e2");
    sink.recordInstant(2, "a", "x", "e3");

    std::ostringstream os;
    sink.writeChromeTrace(os);
    JsonValue doc = parseJson(os.str());

    double tid_a = -1.0, tid_b = -1.0;
    for (const auto &ev : doc.at("traceEvents").array) {
        if (ev.at("ph").string != "i")
            continue;
        if (ev.at("name").string == "e1")
            tid_a = ev.at("tid").number;
        if (ev.at("name").string == "e2")
            tid_b = ev.at("tid").number;
        if (ev.at("name").string == "e3") {
            EXPECT_DOUBLE_EQ(ev.at("tid").number, tid_a);
        }
    }
    EXPECT_NE(tid_a, tid_b);
}

TEST(TraceSink, CapDropsInsteadOfGrowing)
{
    TraceSink sink(4);
    for (int i = 0; i < 10; ++i)
        sink.recordInstant(static_cast<std::uint64_t>(i), "o", "c",
                           "e");
    EXPECT_EQ(sink.size(), 4u);
    EXPECT_EQ(sink.dropped(), 6u);
    sink.clear();
    EXPECT_TRUE(sink.empty());
    EXPECT_EQ(sink.dropped(), 0u);
}

TEST(TraceSink, EscapesSpecialCharactersInNames)
{
    TraceSink sink;
    sink.recordInstant(0, "obj\"ect", "cat", "line\nbreak\\slash");
    std::ostringstream os;
    sink.writeChromeTrace(os);
    JsonValue doc = parseJson(os.str()); // throws if corrupt
    bool found = false;
    for (const auto &ev : doc.at("traceEvents").array) {
        if (ev.at("ph").string == "i") {
            EXPECT_EQ(ev.at("name").string, "line\nbreak\\slash");
            found = true;
        }
    }
    EXPECT_TRUE(found);
}

TEST(RunReport, WritesParseableSelfContainedJson)
{
    RunReport report;
    report.run = "test.kernel";
    report.cycles = 1234;
    report.simSeconds = 0.25;
    report.compileSeconds = 0.125;
    report.extra = {{"unroll", 8.0}, {"ports", 2.0}};
    report.statsJson = "{\"a.b\": {\"value\": 1}}";

    std::ostringstream os;
    report.writeJson(os);
    JsonValue doc = parseJson(os.str());
    EXPECT_EQ(doc.at("run").string, "test.kernel");
    EXPECT_DOUBLE_EQ(doc.at("cycles").number, 1234.0);
    EXPECT_DOUBLE_EQ(doc.at("sim_seconds").number, 0.25);
    EXPECT_DOUBLE_EQ(doc.at("unroll").number, 8.0);
    EXPECT_DOUBLE_EQ(
        doc.at("stats").at("a.b").at("value").number, 1.0);
}

TEST(RunReport, EmptyStatsOmittedButStillValid)
{
    RunReport report;
    report.run = "bare";
    std::ostringstream os;
    report.writeJson(os);
    JsonValue doc = parseJson(os.str());
    EXPECT_EQ(doc.at("run").string, "bare");
}

} // namespace

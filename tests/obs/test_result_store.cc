/**
 * @file
 * ResultStore / StoreReader coverage: ingest-query round trips,
 * schema forward compatibility (unknown fields preserved),
 * concurrent multi-worker appends (exercised under TSan in CI), and
 * corrupt/truncated record recovery.
 */

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <iterator>
#include <thread>
#include <vector>

#include "obs/result_store.hh"
#include "obs/run_report.hh"
#include "sim/sim_context.hh"

using namespace salam;
using namespace salam::obs;

namespace fs = std::filesystem;

namespace
{

/** Fresh scratch directory under the system temp dir. */
class StoreTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        dir = (fs::temp_directory_path() /
               ("salam_store_test_" +
                std::string(::testing::UnitTest::GetInstance()
                                ->current_test_info()
                                ->name())))
                  .string();
        fs::remove_all(dir);
    }

    void TearDown() override { fs::remove_all(dir); }

    std::string dir;
};

StoreRecord
makeRecord(const std::string &kernel, long point, double cycles)
{
    StoreRecord rec;
    rec.kind = "run";
    rec.bench = "unit";
    rec.kernel = kernel;
    rec.configHash = 0x1000 + static_cast<std::uint64_t>(point);
    rec.point = point;
    rec.json = "{\"run\":\"" + kernel +
               "\",\"cycles\":" + std::to_string(cycles) + "}";
    return rec;
}

} // namespace

TEST_F(StoreTest, RoundTrip)
{
    {
        std::string error;
        auto store = ResultStore::open(dir, &error);
        ASSERT_NE(store, nullptr) << error;
        EXPECT_TRUE(fs::exists(fs::path(dir) /
                               ResultStore::manifestName()));
        store->append(makeRecord("gemm", 0, 100));
        store->append(makeRecord("gemm", 1, 200));
        store->append(makeRecord("fft", 0, 300));
        EXPECT_EQ(store->pendingRecords(), 3u);
        ASSERT_TRUE(store->flush());
        EXPECT_EQ(store->pendingRecords(), 0u);
    }

    StoreReader reader = StoreReader::load(dir);
    ASSERT_TRUE(reader.ok()) << reader.error();
    EXPECT_TRUE(reader.warnings().empty());
    ASSERT_EQ(reader.records().size(), 3u);

    RecordFilter filter;
    filter.kernel = "gemm";
    auto gemm = reader.select(filter);
    ASSERT_EQ(gemm.size(), 2u);
    EXPECT_EQ(gemm[0]->point, 0);
    EXPECT_EQ(gemm[1]->point, 1);
    EXPECT_DOUBLE_EQ(gemm[1]->number("cycles"), 200.0);
    EXPECT_EQ(gemm[0]->bench, "unit");
    EXPECT_EQ(gemm[0]->outcome, "ok");
    EXPECT_GT(gemm[0]->timestampNs, 0u);
}

TEST_F(StoreTest, FindByConfigHash)
{
    {
        auto store = ResultStore::open(dir);
        ASSERT_NE(store, nullptr);
        store->append(makeRecord("gemm", 0, 100));
        store->append(makeRecord("gemm", 1, 200));
        // Re-run of point 1's configuration: same hash, new data.
        StoreRecord rerun = makeRecord("gemm", 1, 222);
        store->append(std::move(rerun));
    }

    StoreReader reader = StoreReader::load(dir);
    ASSERT_TRUE(reader.ok());
    const LoadedRecord *hit = reader.findByConfigHash(0x1001);
    ASSERT_NE(hit, nullptr);
    // The memoization lookup returns the latest record.
    EXPECT_DOUBLE_EQ(hit->number("cycles"), 222.0);
    EXPECT_EQ(reader.findAllByConfigHash(0x1001).size(), 2u);
    EXPECT_EQ(reader.findByConfigHash(0xdead), nullptr);
    EXPECT_EQ(reader.findByConfigHash(0), nullptr);
}

TEST_F(StoreTest, UnknownFieldsSurviveRoundTrip)
{
    // A record written by a hypothetical newer schema: extra
    // envelope-payload fields this build knows nothing about.
    {
        auto store = ResultStore::open(dir);
        ASSERT_NE(store, nullptr);
        StoreRecord rec;
        rec.kernel = "gemm";
        rec.json = "{\"cycles\":7,\"future_field\":{\"nested\":"
                   "[1,2,3]},\"another\":\"text\"}";
        store->append(std::move(rec));
    }

    StoreReader reader = StoreReader::load(dir);
    ASSERT_TRUE(reader.ok());
    ASSERT_EQ(reader.records().size(), 1u);
    const LoadedRecord &rec = reader.records()[0];
    // Parsed view sees the known field...
    EXPECT_DOUBLE_EQ(rec.number("cycles"), 7.0);
    // ...and the raw payload preserves the unknown ones verbatim.
    EXPECT_NE(rec.rawJson.find("future_field"), std::string::npos);
    EXPECT_NE(rec.rawJson.find("[1,2,3]"), std::string::npos);
    EXPECT_NE(rec.rawJson.find("\"another\":\"text\""),
              std::string::npos);
    EXPECT_TRUE(rec.record.has("future_field"));
}

TEST_F(StoreTest, BareRunReportJsonlIngests)
{
    // Plain --report-out output (no store envelope) must load as
    // kind="run" records keyed by the report's own fields.
    fs::create_directories(dir);
    std::string path = (fs::path(dir) / "reports.jsonl").string();
    {
        RunReport report;
        report.run = "spmv";
        report.cycles = 4242;
        report.configHash = 0xabc;
        ASSERT_TRUE(report.appendToFile(path));
    }

    StoreReader reader = StoreReader::load(path);
    ASSERT_TRUE(reader.ok()) << reader.error();
    ASSERT_EQ(reader.records().size(), 1u);
    const LoadedRecord &rec = reader.records()[0];
    EXPECT_EQ(rec.kind, "run");
    EXPECT_EQ(rec.kernel, "spmv");
    EXPECT_EQ(rec.configHash, 0xabcu);
    EXPECT_DOUBLE_EQ(rec.number("cycles"), 4242.0);
    // v5 reports always carry build attribution.
    ASSERT_TRUE(rec.record.has("build"));
    EXPECT_TRUE(rec.record.at("build").has("git_sha"));
    EXPECT_TRUE(rec.record.at("build").has("build_type"));
}

TEST_F(StoreTest, ConcurrentAppendsFromManyThreads)
{
    constexpr unsigned kThreads = 8;
    constexpr unsigned kPerThread = 50;
    {
        auto store = ResultStore::open(dir);
        ASSERT_NE(store, nullptr);
        std::vector<std::thread> pool;
        for (unsigned t = 0; t < kThreads; ++t) {
            pool.emplace_back([&store, t] {
                SimContext ctx;
                ScopedSimContext bind(ctx);
                for (unsigned i = 0; i < kPerThread; ++i) {
                    store->append(makeRecord(
                        "k" + std::to_string(t),
                        static_cast<long>(i), i * 1.0));
                    if (i % 16 == 0)
                        store->flush();
                }
            });
        }
        for (std::thread &t : pool)
            t.join();
        ASSERT_TRUE(store->flush());
    }

    StoreReader reader = StoreReader::load(dir);
    ASSERT_TRUE(reader.ok());
    EXPECT_TRUE(reader.warnings().empty());
    EXPECT_EQ(reader.records().size(),
              static_cast<std::size_t>(kThreads) * kPerThread);
    for (unsigned t = 0; t < kThreads; ++t) {
        RecordFilter filter;
        filter.kernel = "k" + std::to_string(t);
        EXPECT_EQ(reader.select(filter).size(), kPerThread);
    }
}

TEST_F(StoreTest, TwoWritersSameDirectory)
{
    // Two stores opened on the same directory write distinct record
    // files; the reader merges them.
    {
        auto store_a = ResultStore::open(dir);
        auto store_b = ResultStore::open(dir);
        ASSERT_NE(store_a, nullptr);
        ASSERT_NE(store_b, nullptr);
        store_a->append(makeRecord("gemm", 0, 1));
        store_b->append(makeRecord("gemm", 1, 2));
    }

    std::size_t jsonl_files = 0;
    for (const auto &entry : fs::directory_iterator(dir)) {
        if (entry.path().extension() == ".jsonl")
            ++jsonl_files;
    }
    EXPECT_EQ(jsonl_files, 2u);

    StoreReader reader = StoreReader::load(dir);
    ASSERT_TRUE(reader.ok());
    EXPECT_EQ(reader.records().size(), 2u);
}

TEST_F(StoreTest, CorruptAndTruncatedLinesAreSkipped)
{
    {
        auto store = ResultStore::open(dir);
        ASSERT_NE(store, nullptr);
        store->append(makeRecord("gemm", 0, 100));
        store->append(makeRecord("gemm", 1, 200));
    }
    // Simulate a killed writer: a second record file with one good
    // line, one truncated line, and one line of garbage.
    {
        std::ofstream os(fs::path(dir) / "records-9999-0.jsonl");
        os << "{\"store_schema\":1,\"kind\":\"run\",\"kernel\":"
              "\"x\",\"record\":{\"cycles\":5}}\n";
        os << "{\"store_schema\":1,\"kind\":\"run\",\"record\":{"
              "\"cyc\n";
        os << "!!not json!!\n";
    }

    StoreReader reader = StoreReader::load(dir);
    ASSERT_TRUE(reader.ok());
    EXPECT_EQ(reader.records().size(), 3u);
    std::size_t skipped = 0;
    std::size_t unmanifested = 0;
    for (const std::string &warning : reader.warnings()) {
        if (warning.find("skipped (") != std::string::npos)
            ++skipped;
        if (warning.find("not registered") != std::string::npos)
            ++unmanifested;
    }
    // The truncated line and the garbage line are skipped; the good
    // line on the same file still loads.
    EXPECT_EQ(skipped, 2u);
    // The handmade record file was never registered by a writer —
    // the reader flags it as a partial flush but loads it anyway.
    EXPECT_EQ(unmanifested, 1u);
}

TEST_F(StoreTest, ManifestRegistersRecordFiles)
{
    {
        auto store = ResultStore::open(dir);
        ASSERT_NE(store, nullptr);
        store->append(makeRecord("gemm", 0, 100));
        ASSERT_TRUE(store->flush());
    }
    std::ifstream is(fs::path(dir) / ResultStore::manifestName());
    ASSERT_TRUE(is.good());
    std::string text((std::istreambuf_iterator<char>(is)),
                     std::istreambuf_iterator<char>());
    EXPECT_NE(text.find("\"store_schema\""), std::string::npos);
    EXPECT_NE(text.find("\"record_file\""), std::string::npos);
    EXPECT_NE(text.find("records-"), std::string::npos);

    StoreReader reader = StoreReader::load(dir);
    ASSERT_TRUE(reader.ok());
    EXPECT_TRUE(reader.warnings().empty());
    EXPECT_EQ(reader.records().size(), 1u);
}

TEST_F(StoreTest, TruncatedManifestLineIsRecovered)
{
    {
        auto store = ResultStore::open(dir);
        ASSERT_NE(store, nullptr);
        store->append(makeRecord("gemm", 0, 100));
        ASSERT_TRUE(store->flush());
    }
    // A writer killed mid-registration leaves a truncated manifest
    // line; the reader must warn and keep every readable record.
    {
        std::ofstream os(fs::path(dir) / ResultStore::manifestName(),
                         std::ios::app);
        os << "{\"record_file\":\"records-truncat";
    }
    StoreReader reader = StoreReader::load(dir);
    ASSERT_TRUE(reader.ok());
    EXPECT_EQ(reader.records().size(), 1u);
    bool manifest_warning = false;
    for (const std::string &warning : reader.warnings())
        if (warning.find("manifest line") != std::string::npos)
            manifest_warning = true;
    EXPECT_TRUE(manifest_warning);
}

TEST_F(StoreTest, MissingManifestWarnsButLoads)
{
    {
        auto store = ResultStore::open(dir);
        ASSERT_NE(store, nullptr);
        store->append(makeRecord("gemm", 0, 100));
        ASSERT_TRUE(store->flush());
    }
    fs::remove(fs::path(dir) / ResultStore::manifestName());

    StoreReader reader = StoreReader::load(dir);
    ASSERT_TRUE(reader.ok());
    EXPECT_EQ(reader.records().size(), 1u);
    bool missing_warning = false;
    for (const std::string &warning : reader.warnings())
        if (warning.find("missing or unreadable") !=
            std::string::npos)
            missing_warning = true;
    EXPECT_TRUE(missing_warning);
}

TEST_F(StoreTest, ManifestListingMissingFileWarns)
{
    {
        auto store = ResultStore::open(dir);
        ASSERT_NE(store, nullptr);
        store->append(makeRecord("gemm", 0, 100));
        ASSERT_TRUE(store->flush());
    }
    // A registered record file that is gone from disk: data was lost
    // (partial flush, hand-pruned store) — the reader says so
    // instead of silently shrinking the result set.
    {
        std::ofstream os(fs::path(dir) / ResultStore::manifestName(),
                         std::ios::app);
        os << "{\"record_file\":\"records-31337-0.jsonl\"}\n";
    }
    StoreReader reader = StoreReader::load(dir);
    ASSERT_TRUE(reader.ok());
    EXPECT_EQ(reader.records().size(), 1u);
    bool missing_file_warning = false;
    for (const std::string &warning : reader.warnings())
        if (warning.find("records-31337-0.jsonl") !=
                std::string::npos &&
            warning.find("missing") != std::string::npos)
            missing_file_warning = true;
    EXPECT_TRUE(missing_file_warning);
}

TEST(StoreReaderTest, MissingStoreFailsGracefully)
{
    StoreReader reader =
        StoreReader::load("/nonexistent/salam/store/path");
    EXPECT_FALSE(reader.ok());
    EXPECT_FALSE(reader.error().empty());
    EXPECT_TRUE(reader.records().empty());
}

TEST(ParseConfigHashTest, Formats)
{
    EXPECT_EQ(parseConfigHash("0x10"), 0x10u);
    EXPECT_EQ(parseConfigHash("16"), 16u);
    EXPECT_EQ(parseConfigHash("0xef37eb005e1fb7e8"),
              0xef37eb005e1fb7e8ull);
    EXPECT_EQ(parseConfigHash(""), 0u);
    EXPECT_EQ(parseConfigHash("junk"), 0u);
    EXPECT_EQ(parseConfigHash("0x10zz"), 0u);
}

TEST(ReportBufferTest, BuffersAndFlushesGrouped)
{
    fs::path dir =
        fs::temp_directory_path() / "salam_report_buffer_test";
    fs::remove_all(dir);
    fs::create_directories(dir);
    std::string path = (dir / "out.jsonl").string();

    SimContext ctx;
    ScopedSimContext bind(ctx);
    {
        ReportBuffer buffer;
        ctx.setReportSink(&buffer);
        RunReport report;
        report.run = "gemm";
        report.cycles = 1;
        EXPECT_TRUE(report.appendToFile(path));
        report.cycles = 2;
        EXPECT_TRUE(report.appendToFile(path));
        // Buffered, not yet on disk.
        EXPECT_EQ(buffer.pendingLines(), 2u);
        EXPECT_FALSE(fs::exists(path));
        ctx.setReportSink(nullptr);
    } // destructor flushes

    std::ifstream is(path);
    ASSERT_TRUE(is.good());
    std::string line;
    unsigned lines = 0;
    while (std::getline(is, line))
        ++lines;
    EXPECT_EQ(lines, 2u);
    fs::remove_all(dir);
}

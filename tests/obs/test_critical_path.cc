/**
 * @file
 * Directed critical-path tests over hand-built dynamic CDFGs where
 * the longest path and its cause attribution are known exactly.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "obs/critical_path.hh"
#include "obs/profiler.hh"
#include "support/minijson.hh"

using namespace salam::obs;
using salam::testsupport::JsonValue;
using salam::testsupport::parseJson;

namespace
{

ProfNode
makeNode(std::uint64_t seq, unsigned static_id, std::uint64_t ready,
         std::uint64_t issue, std::uint64_t commit,
         std::uint64_t parent, ProfCause link, ProfCause wait,
         ProfCause exec)
{
    ProfNode n;
    n.seq = seq;
    n.staticId = static_id;
    n.readyCycle = ready;
    n.issueCycle = issue;
    n.commitCycle = commit;
    n.parentSeq = parent;
    n.linkCause = link;
    n.waitCause = wait;
    n.execCause = exec;
    return n;
}

std::vector<ProfStaticInfo>
twoInstTable()
{
    ProfStaticInfo a;
    a.inst = "%a";
    a.block = "entry";
    a.func = "f";
    a.opcode = "add";
    ProfStaticInfo b;
    b.inst = "%b";
    b.block = "body";
    b.func = "f";
    b.opcode = "load";
    return {a, b};
}

/**
 * Three nodes; C commits early and is off the path. The critical
 * chain is A -> B:
 *
 *   A: ready 0, issue 0, commit 2   (exec 2 cycles, Compute)
 *   B: ready 2 (= A.commit, DataDep link of 0 cycles),
 *      issue 4 (wait 2 cycles, FuContention),
 *      commit 9 (exec 5 cycles, MemResponse)
 *
 * Path length 9 == B.commit; causes: compute 2, fu_contention 2,
 * mem_response 5.
 */
Profiler
diamondProfiler()
{
    Profiler prof;
    prof.setStaticTable(twoInstTable());
    prof.record(makeNode(0, 0, 0, 0, 2, noProfSeq,
                         ProfCause::Start, ProfCause::DataDep,
                         ProfCause::Compute));
    prof.record(makeNode(1, 1, 2, 4, 9, 0, ProfCause::DataDep,
                         ProfCause::FuContention,
                         ProfCause::MemResponse));
    prof.record(makeNode(2, 0, 1, 1, 3, noProfSeq,
                         ProfCause::Start, ProfCause::DataDep,
                         ProfCause::Compute));
    return prof;
}

TEST(CriticalPath, HandComputedPathIsExact)
{
    Profiler prof = diamondProfiler();
    CriticalPathReport r = analyzeCriticalPath(prof);

    EXPECT_EQ(r.pathCycles, 9u);
    EXPECT_EQ(r.sinkCommitCycle, 9u);
    EXPECT_EQ(r.pathNodes, 2u);
    EXPECT_EQ(r.recordedNodes, 3u);
    EXPECT_FALSE(r.truncated);

    EXPECT_EQ(r.causeCycles[unsigned(ProfCause::Compute)], 2u);
    EXPECT_EQ(r.causeCycles[unsigned(ProfCause::FuContention)], 2u);
    EXPECT_EQ(r.causeCycles[unsigned(ProfCause::MemResponse)], 5u);
    EXPECT_EQ(r.causeTotal(), r.pathCycles);
    EXPECT_EQ(r.memoryCycles(), 5u);

    // Hotspots labeled through the static table and ranked.
    ASSERT_EQ(r.byInstruction.size(), 2u);
    EXPECT_EQ(r.byInstruction[0].label, "f:body:%b (load)");
    EXPECT_EQ(r.byInstruction[0].cycles(), 7u);
    EXPECT_EQ(r.byInstruction[0].instances, 1u);
    EXPECT_EQ(r.byInstruction[1].label, "f:entry:%a (add)");
    EXPECT_EQ(r.byInstruction[1].cycles(), 2u);

    ASSERT_EQ(r.byBlock.size(), 2u);
    EXPECT_EQ(r.byBlock[0].label, "f:body");
}

TEST(CriticalPath, SinkTieGoesToYoungerSeq)
{
    Profiler prof;
    // Both commit at 5; seq 1 must be chosen as the sink.
    prof.record(makeNode(0, 0, 0, 0, 5, noProfSeq, ProfCause::Start,
                         ProfCause::DataDep, ProfCause::Compute));
    prof.record(makeNode(1, 1, 1, 2, 5, noProfSeq,
                         ProfCause::Control, ProfCause::MemPort,
                         ProfCause::MemResponse));
    CriticalPathReport r = analyzeCriticalPath(prof);
    EXPECT_EQ(r.pathCycles, 5u);
    // Seq 1's segments: link 1 (Control), wait 1 (MemPort),
    // exec 3 (MemResponse).
    EXPECT_EQ(r.causeCycles[unsigned(ProfCause::Control)], 1u);
    EXPECT_EQ(r.causeCycles[unsigned(ProfCause::MemPort)], 1u);
    EXPECT_EQ(r.causeCycles[unsigned(ProfCause::MemResponse)], 3u);
    EXPECT_EQ(r.causeCycles[unsigned(ProfCause::Compute)], 0u);
}

TEST(CriticalPath, MissingParentTruncatesButStillSums)
{
    Profiler prof;
    // Parent seq 7 was never recorded (dropped by the cap).
    prof.record(makeNode(8, 0, 3, 4, 10, 7, ProfCause::DataDep,
                         ProfCause::FuContention,
                         ProfCause::Compute));
    CriticalPathReport r = analyzeCriticalPath(prof);
    EXPECT_TRUE(r.truncated);
    // exec 6 + wait 1 + the unexplained 3 lead-in cycles charged
    // to the link cause.
    EXPECT_EQ(r.pathCycles, 10u);
    EXPECT_EQ(r.causeTotal(), 10u);
    EXPECT_EQ(r.causeCycles[unsigned(ProfCause::Compute)], 6u);
    EXPECT_EQ(r.causeCycles[unsigned(ProfCause::FuContention)], 1u);
    EXPECT_EQ(r.causeCycles[unsigned(ProfCause::DataDep)], 3u);
}

TEST(CriticalPath, EmptyProfilerYieldsEmptyReport)
{
    Profiler prof;
    CriticalPathReport r = analyzeCriticalPath(prof);
    EXPECT_EQ(r.pathCycles, 0u);
    EXPECT_EQ(r.pathNodes, 0u);
    EXPECT_EQ(r.recordedNodes, 0u);
    EXPECT_FALSE(r.truncated);
    EXPECT_TRUE(r.byInstruction.empty());

    // Serialization of an empty report is still valid JSON.
    std::ostringstream os;
    r.writeJson(os);
    JsonValue doc = parseJson(os.str());
    EXPECT_EQ(doc.at("path_cycles").number, 0.0);
}

TEST(CriticalPath, BoundedRecorderDropsAndCounts)
{
    Profiler prof(2);
    for (std::uint64_t s = 0; s < 5; ++s) {
        prof.record(makeNode(s, 0, s, s, s + 1, noProfSeq,
                             ProfCause::Start, ProfCause::DataDep,
                             ProfCause::Compute));
    }
    EXPECT_EQ(prof.size(), 2u);
    EXPECT_EQ(prof.dropped(), 3u);
    CriticalPathReport r = analyzeCriticalPath(prof);
    EXPECT_EQ(r.recordedNodes, 2u);
    EXPECT_EQ(r.droppedNodes, 3u);
}

TEST(CriticalPath, UnlabeledStaticIdGetsFallbackLabel)
{
    Profiler prof; // no static table attached
    prof.record(makeNode(0, 42, 0, 1, 3, noProfSeq,
                         ProfCause::Start, ProfCause::MemPort,
                         ProfCause::MemResponse));
    CriticalPathReport r = analyzeCriticalPath(prof);
    ASSERT_EQ(r.byInstruction.size(), 1u);
    EXPECT_NE(r.byInstruction[0].label.find("inst#42"),
              std::string::npos);
}

TEST(CriticalPath, ExternalWaitsSurfaceInReport)
{
    Profiler prof = diamondProfiler();
    prof.noteExternalWait("dma0", 1200);
    prof.noteExternalWait("dma0", 300);
    CriticalPathReport r = analyzeCriticalPath(prof);
    ASSERT_EQ(r.externalWaits.count("dma0"), 1u);
    EXPECT_EQ(r.externalWaits.at("dma0"), 1500u);

    std::ostringstream os;
    r.writeJson(os);
    JsonValue doc = parseJson(os.str());
    EXPECT_EQ(doc.at("external_waits").at("dma0").number, 1500.0);
}

} // namespace

/** @file Tests for the HLS/DC/FPGA surrogate models. */

#include <gtest/gtest.h>

#include "hls/dc_estimator.hh"
#include "hls/fpga_model.hh"
#include "hls/hls_scheduler.hh"
#include "opt/fold.hh"
#include "opt/unroll.hh"
#include "kernels/machsuite.hh"
#include "../ir/test_helpers.hh"

using namespace salam;
using namespace salam::ir;
using namespace salam::hls;
using namespace salam::kernels;

namespace
{

constexpr std::uint64_t base = 0x10000;

HlsResult
estimateKernel(const Kernel &kernel, const HlsConfig &cfg = {})
{
    Module mod("m");
    IRBuilder b(mod);
    Function *fn = kernel.buildOptimized(b);
    FlatMemory mem;
    kernel.seed(mem, base);
    HlsScheduler scheduler(cfg);
    return scheduler.estimate(*fn, kernel.args(base), mem);
}

} // namespace

TEST(HlsScheduler, StraightLineBlockLatency)
{
    // A chain of 3 dependent FP adds (latency 3 each) must take at
    // least 9 cycles; independent ops schedule in parallel.
    Module mod("m");
    IRBuilder b(mod);
    Context &ctx = b.context();
    Function *fn = b.createFunction("chain", ctx.doubleType());
    Argument *x = fn->addArgument(ctx.doubleType(), "x");
    BasicBlock *entry = b.createBlock("entry");
    b.setInsertPoint(entry);
    Value *a1 = b.fadd(x, b.constDouble(1), "a1");
    Value *a2 = b.fadd(a1, b.constDouble(2), "a2");
    Value *a3 = b.fadd(a2, b.constDouble(3), "a3");
    b.ret(a3);

    HlsScheduler scheduler;
    BlockSchedule sched = scheduler.scheduleBlock(*fn->entry());
    EXPECT_GE(sched.latency, 9u);
    EXPECT_EQ(sched.boundUnits[static_cast<std::size_t>(
                  hw::FuType::FpAddSubDouble)],
              1u);
}

TEST(HlsScheduler, ParallelOpsBindMoreUnits)
{
    Module mod("m");
    IRBuilder b(mod);
    Context &ctx = b.context();
    Function *fn = b.createFunction("par", ctx.doubleType());
    Argument *x = fn->addArgument(ctx.doubleType(), "x");
    BasicBlock *entry = b.createBlock("entry");
    b.setInsertPoint(entry);
    Value *s1 = b.fmul(x, b.constDouble(2), "s1");
    Value *s2 = b.fmul(x, b.constDouble(3), "s2");
    Value *s3 = b.fmul(x, b.constDouble(4), "s3");
    Value *t = b.fadd(b.fadd(s1, s2, "t1"), s3, "t2");
    b.ret(t);

    HlsScheduler unlimited;
    auto sched = unlimited.scheduleBlock(*fn->entry());
    EXPECT_EQ(sched.boundUnits[static_cast<std::size_t>(
                  hw::FuType::FpMultiplierDouble)],
              3u);

    // With a cap of 1, the same block binds a single multiplier
    // and stretches in time.
    HlsConfig capped;
    capped.fpUnitCap = 1;
    HlsScheduler constrained(capped);
    auto sched2 = constrained.scheduleBlock(*fn->entry());
    EXPECT_EQ(sched2.boundUnits[static_cast<std::size_t>(
                  hw::FuType::FpMultiplierDouble)],
              1u);
    EXPECT_GE(sched2.latency, sched.latency);
}

TEST(HlsScheduler, LoopPipeliningUsesInitiationInterval)
{
    // vecadd: deep body (gep -> load -> add -> store) but a shallow
    // induction recurrence, so the loop pipelines with II < latency.
    Module mod("m");
    IRBuilder b(mod);
    Function *fn = salam::test::buildVecAdd(b, 64);
    HlsScheduler scheduler;
    auto sched =
        scheduler.scheduleBlock(*fn->findBlock("loop"));
    EXPECT_LT(sched.initiationInterval, sched.latency);

    FlatMemory mem;
    auto result = scheduler.estimate(
        *fn,
        {RuntimeValue::fromPointer(0x100),
         RuntimeValue::fromPointer(0x1100),
         RuntimeValue::fromPointer(0x2100)},
        mem);
    // 64 pipelined iterations: bounded below by trips * II and far
    // under fully-serialized trips * latency.
    EXPECT_LT(result.totalCycles, 64u * sched.latency);
    EXPECT_GE(result.totalCycles,
              63u * sched.initiationInterval);
}

TEST(HlsScheduler, MemoryPortsBoundTheIi)
{
    Module mod("m");
    IRBuilder b(mod);
    Function *fn = salam::test::buildVecAdd(b, 64);
    opt::Unroller::unrollByLabel(*fn, "loop", 8);
    opt::cleanup(*fn);

    // 16 loads per iteration; 2 read ports -> II >= 8.
    HlsScheduler scheduler;
    auto sched = scheduler.scheduleBlock(*fn->findBlock("loop"));
    EXPECT_GE(sched.initiationInterval, 8u);
}

TEST(HlsScheduler, KernelEstimatesAreReasonable)
{
    for (const char *name : {"gemm", "stencil2d", "nw"}) {
        auto kernel = makeKernel(name);
        auto result = estimateKernel(*kernel);
        EXPECT_GT(result.totalCycles, 100u) << name;
        EXPECT_GT(result.dynamicInstructions, 100u) << name;
    }
}

TEST(DcEstimator, ReportsArePositiveAndConsistent)
{
    auto kernel = makeGemm(8, 4);
    auto hls = estimateKernel(*kernel);
    DcEstimator dc;
    DcReport report = dc.estimate(hls, 4096);
    EXPECT_GT(report.dynamicPowerMw, 0.0);
    EXPECT_GT(report.leakagePowerMw, 0.0);
    EXPECT_GT(report.datapathAreaUm2, 0.0);
    EXPECT_DOUBLE_EQ(report.totalPowerMw,
                     report.dynamicPowerMw +
                         report.leakagePowerMw);
}

TEST(DcEstimator, SpmContributes)
{
    auto kernel = makeGemm(8, 4);
    auto hls = estimateKernel(*kernel);
    DcEstimator dc;
    hw::SramConfig spm{16 * 1024, 8, 2, 1};
    DcReport with =
        dc.estimate(hls, 4096, &spm, 10'000, 5'000);
    DcReport without = dc.estimate(hls, 4096);
    EXPECT_GT(with.totalPowerMw, without.totalPowerMw);
    EXPECT_GT(with.memoryAreaUm2, 0.0);
}

TEST(DcEstimator, LibrarySkewIsDeterministic)
{
    auto kernel = makeGemm(8, 4);
    auto hls = estimateKernel(*kernel);
    DcEstimator dc1, dc2;
    EXPECT_DOUBLE_EQ(dc1.estimate(hls, 1000).totalPowerMw,
                     dc2.estimate(hls, 1000).totalPowerMw);
}

TEST(FpgaModel, TimingScalesWithWork)
{
    FpgaModel board;
    auto small = board.timing(10'000, 4096, 4096);
    auto large = board.timing(100'000, 65536, 65536);
    EXPECT_GT(large.computeUs, small.computeUs);
    EXPECT_GT(large.bulkTransferUs, small.bulkTransferUs);
    EXPECT_DOUBLE_EQ(small.totalUs(),
                     small.computeUs + small.bulkTransferUs);
}
